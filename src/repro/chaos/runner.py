"""Deterministic chaos runs: faulted cluster vs. offline engine, bit for bit.

:class:`ChaosRunner` is the harness behind ``python -m repro.cli
chaos-test``.  One run:

1. derives the canonical workload exactly like ``load-test`` (same seed
   discipline: one generator for workload + params, one shared plan seed
   for the offline engine, the chunk stream, and the routing plan);
2. computes the ground truth offline via
   :func:`repro.engine.run_simulation`;
3. starts a real cluster — :class:`~repro.cluster.ClusterSupervisor`
   shards, :class:`~repro.cluster.ClusterRouter` — but threads **every**
   connection through :class:`~repro.chaos.transport.FaultyTransport`
   proxies (client↔router and router↔each-shard);
4. streams the chunk batches while the seeded
   :class:`~repro.chaos.schedule.FaultSchedule` injects resets, truncated
   and corrupted frames, stalls, delays, shard SIGKILLs and SIGSTOPs;
5. asserts the served answers equal the offline engine's **bit for bit**.

The client send loop recovers from its own faults by *resume-by-count*:
batches are sent on one ordered logical stream, so the absorbed count the
server reports after ``sync`` is always a prefix sum of batch sizes; on
any send failure the runner reconnects, syncs, and resumes at the first
unabsorbed batch.  The router's sequence-number dedup (``§7.1``) makes the
router→shard side equally exact, so the only acceptable end states are
"bit-identical" or a typed error — never silent corruption, which is the
whole point of the harness (``docs/chaos.md``).
"""

from __future__ import annotations

import asyncio
import shutil
import signal
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.chaos.schedule import (
    FAULT_KINDS,
    MEMBERSHIP_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.chaos.transport import FaultyTransport
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor
from repro.server.client import AsyncAggregationClient, ServerError
from repro.server.framing import FrameError
from repro.utils.rng import as_generator

__all__ = ["ChaosResult", "ChaosRunner", "ChaosSupervisor"]

#: client-side failures the send loop recovers from by reconnect+resume
_RECOVERABLE = (
    OSError,
    TimeoutError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    FrameError,
    ServerError,
)


class ChaosSupervisor:
    """A :class:`ClusterSupervisor` facade that keeps shards behind proxies.

    The router talks to shard *proxies*; a restart moves the real shard to
    a fresh port, so this wrapper retargets the shard's proxy after the
    inner restart and hands the router back the (stable) proxy endpoint.
    Everything else delegates, including the ``shards`` handle list the
    router's health report reads restart counts from.
    """

    def __init__(self, inner: ClusterSupervisor,
                 proxies: List[FaultyTransport]) -> None:
        self.inner = inner
        self.proxies = proxies

    @property
    def shards(self):
        return self.inner.shards

    @property
    def base_dir(self):
        return self.inner.base_dir

    @property
    def transport(self):
        return self.inner.transport

    def endpoints(self) -> List[Tuple[str, int]]:
        return [proxy.endpoint for proxy in self.proxies]

    def endpoint_of(self, index: int) -> Tuple[str, int]:
        # Shards added after the proxies were built run unproxied — wire
        # faults stay aimed at the original shard set.
        if index < len(self.proxies):
            return self.proxies[index].endpoint
        return self.inner.endpoint_of(index)

    def shm_name(self, index: int):
        return self.inner.shm_name(index)

    def add_shard(self) -> Tuple[int, str, int]:
        return self.inner.add_shard()

    def retire(self, index: int) -> None:
        self.inner.retire(index)

    def active_ids(self) -> List[int]:
        return self.inner.active_ids()

    def restart(self, index: int) -> Tuple[str, int]:
        host, port = self.inner.restart(index)
        if index < len(self.proxies):
            self.proxies[index].retarget(host, port)
            return self.proxies[index].endpoint
        return host, port

    def kill(self, index: int, sig: int = signal.SIGKILL) -> None:
        self.inner.kill(index, sig)

    def resume(self, index: int) -> None:
        self.inner.resume(index)

    def poll(self) -> List[int]:
        return self.inner.poll()

    def stop(self) -> None:
        self.inner.stop()


@dataclass
class ChaosResult:
    """Outcome of one chaos run (``identical`` is the acceptance bit)."""

    identical: bool
    num_users: int
    num_batches: int
    queries: List[int]
    served: np.ndarray
    expected: np.ndarray
    fired: List[FaultEvent]
    restarts: int
    send_retries: int
    schedule: FaultSchedule
    health: Dict[str, object] = field(default_factory=dict)
    #: membership-mode detail (``chaos-test --membership``): the add/drain
    #: replies, the final shard map, and the per-transition assertions
    membership: Dict[str, object] = field(default_factory=dict)

    @property
    def fired_kinds(self) -> Tuple[str, ...]:
        present = {event.kind for event in self.fired}
        return tuple(kind for kind in FAULT_KINDS + MEMBERSHIP_KINDS
                     if kind in present)


class ChaosRunner:
    """Drive one seeded chaos run against a real faulted cluster."""

    def __init__(
        self,
        protocol: str = "hashtogram",
        domain_size: int = 4096,
        epsilon: float = 1.0,
        num_users: int = 12_000,
        num_shards: int = 3,
        seed: int = 7,
        wire_format: str = "binary",
        schedule: Optional[FaultSchedule] = None,
        base_dir: Optional[Union[str, Path]] = None,
        request_timeout: float = 2.0,
        client_timeout: float = 10.0,
        num_queries: int = 32,
        max_retries: int = 60,
        membership: bool = False,
        transport: str = "tcp",
    ) -> None:
        self.protocol = protocol
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)
        self.num_users = int(num_users)
        self.num_shards = int(num_shards)
        self.seed = int(seed)
        self.wire_format = wire_format
        self.schedule = schedule
        self.base_dir = base_dir
        self.request_timeout = float(request_timeout)
        self.client_timeout = float(client_timeout)
        self.num_queries = int(num_queries)
        self.max_retries = int(max_retries)
        self.membership = bool(membership)
        self.transport = transport
        self._retries = 0
        self._client: Optional[AsyncAggregationClient] = None
        self._client_addr: Tuple[str, int] = ("", 0)

    def run(self) -> ChaosResult:
        """Execute the whole chaos run on a private event loop."""
        if self.membership:
            return asyncio.run(self._run_membership())
        return asyncio.run(self._run())

    # ----- client-side retry plumbing -------------------------------------------------

    async def _fresh_client(self) -> AsyncAggregationClient:
        if self._client is not None:
            try:
                await self._client.close()
            except OSError:
                pass
            self._client = None
        host, port = self._client_addr
        last: Optional[BaseException] = None
        for _ in range(8):
            try:
                self._client = await AsyncAggregationClient.connect(
                    host, port, wire_format=self.wire_format,
                    timeout=self.client_timeout,
                )
                return self._client
            except _RECOVERABLE as exc:
                last = exc
                await asyncio.sleep(0.1)
        raise RuntimeError(f"could not reconnect to the router: {last!r}")

    def _spend_retry(self, exc: BaseException) -> None:
        self._retries += 1
        if self._retries > self.max_retries:
            raise RuntimeError(
                f"chaos run exceeded {self.max_retries} client retries "
                f"(last failure: {exc!r})"
            ) from exc

    async def _synced_count(self) -> int:
        """``sync`` with reconnect-on-failure; returns the absorbed count."""
        while True:
            try:
                if self._client is None:
                    await self._fresh_client()
                assert self._client is not None
                return await self._client.sync()
            except _RECOVERABLE as exc:
                self._spend_retry(exc)
                await self._fresh_client()

    # ----- the run --------------------------------------------------------------------

    async def _run(self) -> ChaosResult:
        from repro.analysis.metrics import true_frequencies
        from repro.engine import encode_stream, make_plan, run_simulation
        from repro.engine.bench import build_bench_params
        from repro.workloads.distributions import zipf_workload

        # Workload + ground truth, exactly the load-test seed discipline —
        # but with an explicit (smaller) chunk size so the stream has
        # enough frames for every scheduled fault to land on one.
        gen = as_generator(self.seed)
        values = zipf_workload(self.num_users, self.domain_size,
                               support=min(2_000, self.domain_size), rng=gen)
        params = build_bench_params(self.protocol, self.domain_size,
                                    self.epsilon, self.num_users, rng=gen)
        plan_seed = int(gen.integers(0, 2**63 - 1))
        chunk_size = max(1, self.num_users // max(1, self.num_shards * 10))
        offline = run_simulation(
            params, values, rng=np.random.default_rng(plan_seed),
            chunk_size=chunk_size,
        ).finalize()
        batches = list(encode_stream(
            params, values, rng=np.random.default_rng(plan_seed),
            chunk_size=chunk_size,
        ))
        routes = [chunk.route_key for chunk in make_plan(
            params, self.num_users, rng=np.random.default_rng(plan_seed),
            chunk_size=chunk_size,
        )]
        cum = np.cumsum([len(batch) for batch in batches])

        schedule = self.schedule
        if schedule is None:
            schedule = FaultSchedule.generate(
                self.seed, num_frames=len(batches),
                num_shards=self.num_shards,
            )
        process_faults = schedule.process_faults()

        ephemeral = self.base_dir is None
        base_dir = Path(
            tempfile.mkdtemp(prefix="repro-chaos-")
            if ephemeral else self.base_dir  # type: ignore[arg-type]
        )
        loop = asyncio.get_running_loop()
        supervisor = ClusterSupervisor(params, self.num_shards, base_dir)
        shard_proxies: List[FaultyTransport] = []
        client_proxy: Optional[FaultyTransport] = None
        router: Optional[ClusterRouter] = None
        resume_tasks: List[asyncio.Task] = []
        try:
            endpoints = await loop.run_in_executor(None, supervisor.start)
            for k, (host, port) in enumerate(endpoints):
                proxy = FaultyTransport(
                    f"shard-{k}", (host, port),
                    faults=schedule.wire_faults(f"shard-{k}"),
                )
                await proxy.start()
                shard_proxies.append(proxy)
            chaos_supervisor = ChaosSupervisor(supervisor, shard_proxies)
            router = ClusterRouter(
                params,
                endpoints=chaos_supervisor.endpoints(),
                supervisor=chaos_supervisor,  # type: ignore[arg-type]
                rng=self.seed,
                connect_timeout=2.0,
                request_timeout=self.request_timeout,
                checkpoint_reports=max(256, self.num_users // 4),
                backoff_base=0.02,
            )
            router_addr = await router.start()
            client_proxy = FaultyTransport(
                "client", router_addr, faults=schedule.wire_faults("client"),
            )
            self._client_addr = await client_proxy.start()

            client = await self._fresh_client()
            published = await client.hello()
            if published != params:
                raise RuntimeError("router published mismatched parameters")

            # The send loop: ordered batches, process faults at their send
            # indices, reconnect+resume-by-count on any failure.  The
            # outer loop re-checks the absorbed count because a stalled
            # proxy can swallow "successful" sends.
            sent = 0
            while True:
                while sent < len(batches):
                    for event in process_faults.pop(sent, []):
                        shard = event.shard
                        assert shard is not None
                        if event.kind == "kill":
                            await loop.run_in_executor(
                                None, chaos_supervisor.kill, shard,
                            )
                        else:  # sigstop: freeze now, thaw after event.arg
                            await loop.run_in_executor(
                                None, chaos_supervisor.kill, shard,
                                signal.SIGSTOP,
                            )
                            resume_tasks.append(loop.create_task(
                                self._resume_later(
                                    chaos_supervisor, shard, event.arg)
                            ))
                    try:
                        assert self._client is not None
                        await self._client.send_batch(
                            batches[sent], epoch=0, route=routes[sent],
                        )
                        sent += 1
                    except _RECOVERABLE as exc:
                        self._spend_retry(exc)
                        await self._fresh_client()
                        absorbed = await self._synced_count()
                        sent = int(np.searchsorted(cum, absorbed,
                                                   side="right"))
                absorbed = await self._synced_count()
                if absorbed == self.num_users:
                    break
                self._spend_retry(RuntimeError(
                    f"absorbed {absorbed} of {self.num_users} after full "
                    f"send; resuming"
                ))
                sent = int(np.searchsorted(cum, absorbed, side="right"))

            # Let every frozen shard thaw before the query phase.
            if resume_tasks:
                await asyncio.gather(*resume_tasks, return_exceptions=True)
                resume_tasks.clear()

            truth = true_frequencies(values)
            top = sorted(truth.items(), key=lambda kv: -kv[1])[:5]
            probe = np.random.default_rng(0).integers(
                0, self.domain_size, size=self.num_queries)
            queries = [int(x) for x, _ in top] + [int(x) for x in probe]
            served = await self._query_with_retry(queries)
            expected = offline.estimate_many(queries)
            health = await self._health_with_retry()

            return ChaosResult(
                identical=bool(np.array_equal(served, expected)),
                num_users=self.num_users,
                num_batches=len(batches),
                queries=queries,
                served=np.asarray(served, dtype=float),
                expected=np.asarray(expected, dtype=float),
                fired=self._collect_fired(shard_proxies, client_proxy,
                                          schedule, process_faults),
                restarts=sum(h.restarts for h in supervisor.shards),
                send_retries=self._retries,
                schedule=schedule,
                health=health,
            )
        finally:
            for task in resume_tasks:
                task.cancel()
            if self._client is not None:
                try:
                    await self._client.close()
                except OSError:
                    pass
                self._client = None
            if client_proxy is not None:
                await client_proxy.stop()
            if router is not None:
                await router.stop()
            for proxy in shard_proxies:
                await proxy.stop()
            await loop.run_in_executor(None, supervisor.stop)
            if ephemeral:
                shutil.rmtree(base_dir, ignore_errors=True)

    async def _resume_later(self, chaos_supervisor: ChaosSupervisor,
                            shard: int, delay: float) -> None:
        await asyncio.sleep(max(0.0, delay))
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, chaos_supervisor.resume, shard)

    async def _query_with_retry(self, queries: List[int]) -> np.ndarray:
        while True:
            try:
                if self._client is None:
                    await self._fresh_client()
                assert self._client is not None
                return await self._client.query(queries)
            except _RECOVERABLE as exc:
                self._spend_retry(exc)
                await self._fresh_client()

    async def _health_with_retry(self) -> Dict[str, object]:
        while True:
            try:
                if self._client is None:
                    await self._fresh_client()
                assert self._client is not None
                return await self._client.health()
            except _RECOVERABLE as exc:
                self._spend_retry(exc)
                await self._fresh_client()

    # ----- membership mode (chaos-test --membership) ----------------------------------

    async def _run_membership(self) -> ChaosResult:
        """Elastic-membership chaos: add/drain mid-stream under fault fire.

        Proxy-less on purpose: the faults in this mode live *below* the
        wire — SIGKILL during the drain handoff, torn journal tails,
        flipped snapshot bytes — so the router talks to its shards
        directly and ``--transport`` picks tcp or shared-memory rings for
        that leg (the client leg is always tcp).  The choreography is
        scripted: ``add_shard`` at send index ``n // 4``, ``drain`` of the
        schedule's victim at ``n // 2``, with the seeded
        :meth:`FaultSchedule.generate_membership` events aimed at the
        transitions.  Acceptance is the same bit as the default mode: the
        finalized cluster answers must equal the offline engine's exactly,
        and the final shard map must show exactly the scripted membership.
        """
        from repro.analysis.metrics import true_frequencies
        from repro.engine import encode_stream, make_plan, run_simulation
        from repro.engine.bench import build_bench_params
        from repro.workloads.distributions import zipf_workload

        gen = as_generator(self.seed)
        values = zipf_workload(self.num_users, self.domain_size,
                               support=min(2_000, self.domain_size), rng=gen)
        params = build_bench_params(self.protocol, self.domain_size,
                                    self.epsilon, self.num_users, rng=gen)
        plan_seed = int(gen.integers(0, 2**63 - 1))
        chunk_size = max(1, self.num_users // max(1, self.num_shards * 10))
        offline = run_simulation(
            params, values, rng=np.random.default_rng(plan_seed),
            chunk_size=chunk_size,
        ).finalize()
        batches = list(encode_stream(
            params, values, rng=np.random.default_rng(plan_seed),
            chunk_size=chunk_size,
        ))
        routes = [chunk.route_key for chunk in make_plan(
            params, self.num_users, rng=np.random.default_rng(plan_seed),
            chunk_size=chunk_size,
        )]
        cum = np.cumsum([len(batch) for batch in batches])
        n = len(batches)
        if n < 5:
            raise ValueError(
                "membership mode needs >= 5 batches to place the add and "
                "the drain; raise num_users"
            )
        add_frame = n // 4
        drain_frame = n // 2
        # Four epoch bands: the add cut lands mid-stream, so the grown
        # cluster routes at least one whole band through the new shard.
        epochs = [(i * 4) // n for i in range(n)]

        schedule = self.schedule
        if schedule is None:
            schedule = FaultSchedule.generate_membership(
                self.seed, num_frames=n, num_shards=self.num_shards,
                add_frame=add_frame, drain_frame=drain_frame,
            )
        faults = schedule.membership_faults()
        process_faults = schedule.process_faults()
        drain_id = 0
        for event in schedule.events:
            if event.kind == "drain-race":
                drain_id = int(event.shard or 0)

        ephemeral = self.base_dir is None
        base_dir = Path(
            tempfile.mkdtemp(prefix="repro-chaos-")
            if ephemeral else self.base_dir  # type: ignore[arg-type]
        )
        loop = asyncio.get_running_loop()
        supervisor = ClusterSupervisor(params, self.num_shards, base_dir,
                                       transport=self.transport)

        def make_router() -> ClusterRouter:
            return ClusterRouter(
                params,
                supervisor=supervisor,
                rng=self.seed,
                transport=self.transport,
                connect_timeout=2.0,
                request_timeout=self.request_timeout,
                checkpoint_reports=max(256, self.num_users // 4),
                backoff_base=0.02,
            )

        router: Optional[ClusterRouter] = None
        fired: List[FaultEvent] = []
        membership: Dict[str, object] = {
            "transport": self.transport,
            "add_frame": add_frame,
            "drain_frame": drain_frame,
            "drain_shard": drain_id,
        }
        added = False
        drained = False
        resume_tasks: List[asyncio.Task] = []
        try:
            await loop.run_in_executor(None, supervisor.start)
            router = make_router()
            self._client_addr = await router.start()
            client = await self._fresh_client()
            published = await client.hello()
            if published != params:
                raise RuntimeError("router published mismatched parameters")

            # One monotone cursor walks the fault/choreography slots in
            # order even when resume-by-count moves ``sent`` non-linearly:
            # slot k's faults fire before slot k's scripted transition
            # (the drain-race SIGKILL must land just before the drain),
            # and slot ``add_frame`` is always processed before any later
            # slot's kill of the not-yet-existing new shard.
            cursor = 0
            sent = 0
            while True:
                while sent < n:
                    while cursor <= sent:
                        slot_events = (faults.pop(cursor, [])
                                       + process_faults.pop(cursor, []))
                        for event in slot_events:
                            if event.kind == "corrupt-snapshot":
                                membership["corrupt_snapshot"] = (
                                    await self._corrupt_snapshot(
                                        loop, supervisor,
                                        int(event.shard or 0), base_dir))
                            elif event.kind == "torn-journal":
                                assert router is not None
                                # Sync first: the barrier guarantees every
                                # journaled frame is absorbed shard-side,
                                # so the record torn off the tail is a
                                # *duplicate* of delivered state (the
                                # crash window fsync=False journals have)
                                # — torn-tail truncation must be loss-free
                                # then, and the watermark resume proves it.
                                await self._synced_count()
                                router, torn = await self._tear_and_restart(
                                    loop, router, make_router, base_dir)
                                membership["torn_journal"] = torn
                                absorbed = await self._synced_count()
                                sent = int(np.searchsorted(cum, absorbed,
                                                           side="right"))
                                # Re-checkpoint so every later SIGKILL
                                # recovers from a snapshot whose journal
                                # tail is complete again.
                                await self._snapshot_with_retry()
                            elif event.kind == "drain-race":
                                victim = int(event.shard or 0)
                                if victim in supervisor.active_ids():
                                    await loop.run_in_executor(
                                        None, supervisor.kill, victim)
                            elif event.kind == "kill":
                                victim = int(event.shard or 0)
                                if victim in supervisor.active_ids():
                                    await loop.run_in_executor(
                                        None, supervisor.kill, victim)
                            else:  # sigstop: freeze now, thaw after arg
                                victim = int(event.shard or 0)
                                if victim in supervisor.active_ids():
                                    await loop.run_in_executor(
                                        None, supervisor.kill, victim,
                                        signal.SIGSTOP)
                                    resume_tasks.append(loop.create_task(
                                        self._resume_later(
                                            supervisor, victim, event.arg)))
                            fired.append(event)
                        if cursor == add_frame and not added:
                            membership["add"] = await self._membership_op(
                                lambda c: c.add_shard(),
                                self._added_reply,
                            )
                            added = True
                        if cursor == drain_frame and not drained:
                            membership["drain"] = await self._membership_op(
                                lambda c: c.drain_shard(drain_id), None)
                            drained = True
                        cursor += 1
                    try:
                        assert self._client is not None
                        await self._client.send_batch(
                            batches[sent], epoch=epochs[sent],
                            route=routes[sent],
                        )
                        sent += 1
                    except _RECOVERABLE as exc:
                        self._spend_retry(exc)
                        await self._fresh_client()
                        absorbed = await self._synced_count()
                        sent = int(np.searchsorted(cum, absorbed,
                                                   side="right"))
                absorbed = await self._synced_count()
                if absorbed == self.num_users:
                    break
                self._spend_retry(RuntimeError(
                    f"absorbed {absorbed} of {self.num_users} after full "
                    f"send; resuming"
                ))
                sent = int(np.searchsorted(cum, absorbed, side="right"))

            if resume_tasks:
                await asyncio.gather(*resume_tasks, return_exceptions=True)
                resume_tasks.clear()

            truth = true_frequencies(values)
            top = sorted(truth.items(), key=lambda kv: -kv[1])[:5]
            probe = np.random.default_rng(0).integers(
                0, self.domain_size, size=self.num_queries)
            queries = [int(x) for x, _ in top] + [int(x) for x in probe]
            served = await self._query_with_retry(queries)
            expected = offline.estimate_many(queries)
            health = await self._health_with_retry()
            final_map = await self._shard_map_with_retry()
            membership["final_map"] = final_map

            # The map itself is an invariant, not a measurement: anything
            # but "victim retired, survivors + the new shard active" means
            # a transition half-landed, which must fail loudly.
            active = [int(s["id"]) for s in final_map["shards"]
                      if s["status"] == "active"]
            want = sorted((set(range(self.num_shards)) - {drain_id})
                          | {self.num_shards})
            if active != want or drain_id not in final_map["retired"]:
                raise RuntimeError(
                    f"membership did not converge: active={active} "
                    f"(want {want}), retired={final_map['retired']} "
                    f"(want {drain_id} in it)"
                )

            return ChaosResult(
                identical=bool(np.array_equal(served, expected)),
                num_users=self.num_users,
                num_batches=n,
                queries=queries,
                served=np.asarray(served, dtype=float),
                expected=np.asarray(expected, dtype=float),
                fired=sorted(fired,
                             key=lambda e: (e.frame, e.target, e.kind)),
                restarts=sum(h.restarts for h in supervisor.shards),
                send_retries=self._retries,
                schedule=schedule,
                health=health,
                membership=membership,
            )
        finally:
            for task in resume_tasks:
                task.cancel()
            if self._client is not None:
                try:
                    await self._client.close()
                except OSError:
                    pass
                self._client = None
            if router is not None:
                await router.stop()
            await loop.run_in_executor(None, supervisor.stop)
            if ephemeral:
                shutil.rmtree(base_dir, ignore_errors=True)

    async def _membership_op(self, do, check) -> Dict[str, object]:
        """Run one membership verb with reconnect-on-failure.

        Membership verbs are not blindly retryable the way sends are: a
        second ``add_shard`` after a reply lost on the wire would grow the
        cluster twice.  ``check`` (when given) inspects the cluster after
        a failure and returns the completed-reply stand-in if the verb
        actually landed server-side; ``None`` means retry.  The drain verb
        needs no check — the router resumes a half-done drain and answers
        idempotently for an already-retired shard.
        """
        while True:
            try:
                if self._client is None:
                    await self._fresh_client()
                assert self._client is not None
                return await do(self._client)
            except _RECOVERABLE as exc:
                self._spend_retry(exc)
                await self._fresh_client()
                if check is not None:
                    assert self._client is not None
                    done = await check(self._client)
                    if done is not None:
                        return done

    async def _added_reply(
        self, client: AsyncAggregationClient,
    ) -> Optional[Dict[str, object]]:
        """Completed-``add_shard`` detector for :meth:`_membership_op`."""
        try:
            reply = await client.shard_map()
        except _RECOVERABLE:
            return None
        shard_map = reply["map"]
        statuses = {int(s["id"]): s["status"]
                    for s in shard_map["shards"]}  # type: ignore[index]
        if statuses.get(self.num_shards) == "active":
            return {
                "type": "shard_added",
                "shard": self.num_shards,
                "map_version": shard_map["version"],  # type: ignore[index]
                "recovered": True,
            }
        return None

    async def _snapshot_with_retry(self) -> str:
        while True:
            try:
                if self._client is None:
                    await self._fresh_client()
                assert self._client is not None
                return await self._client.snapshot()
            except _RECOVERABLE as exc:
                self._spend_retry(exc)
                await self._fresh_client()

    async def _shard_map_with_retry(self) -> Dict[str, object]:
        while True:
            try:
                if self._client is None:
                    await self._fresh_client()
                assert self._client is not None
                reply = await self._client.shard_map()
                return reply["map"]  # type: ignore[return-value]
            except _RECOVERABLE as exc:
                self._spend_retry(exc)
                await self._fresh_client()

    async def _corrupt_snapshot(
        self,
        loop: asyncio.AbstractEventLoop,
        supervisor: ClusterSupervisor,
        shard: int,
        base_dir: Path,
    ) -> str:
        """Flip bytes in a shard's newest snapshot, then SIGKILL the shard.

        Checkpoints **twice back to back** first, with no sends between:
        the newest and the previous snapshot then hold the same
        exact-integer state and the journals were cleared at the barrier,
        so walking back past the corrupted newest
        (:meth:`SnapshotStore.latest_valid`) restores bit-identical state
        by construction — corrupting a *uniquely newest* snapshot would be
        genuine data loss, which is not what this fault tests.
        """
        await self._snapshot_with_retry()
        await self._snapshot_with_retry()
        shard_dir = Path(base_dir) / f"shard-{shard}"
        snapshots = sorted(shard_dir.glob("snapshot-*"))
        if not snapshots:
            raise RuntimeError(f"no snapshots to corrupt in {shard_dir}")
        victim = snapshots[-1]
        await loop.run_in_executor(None, self._flip_bytes, victim)
        await loop.run_in_executor(None, supervisor.kill, shard)
        return str(victim)

    @staticmethod
    def _flip_bytes(path: Path, count: int = 5) -> None:
        raw = bytearray(path.read_bytes())
        mid = len(raw) // 2
        for offset in range(mid, min(mid + count, len(raw))):
            raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))

    async def _tear_and_restart(
        self,
        loop: asyncio.AbstractEventLoop,
        router: ClusterRouter,
        make_router,
        base_dir: Path,
    ) -> Tuple[ClusterRouter, str]:
        """Stop the router, tear a frame-journal tail, start a new router.

        The replacement router replays the torn journal (truncating the
        partial tail record in place) and re-learns each shard's sequence
        watermark from its health report, so the frames lost off the tail
        — already delivered before the tear — are neither replayed twice
        nor lost.
        """
        await router.stop()
        torn = await loop.run_in_executor(
            None, self._tear_tail, Path(base_dir))
        replacement = make_router()
        self._client_addr = await replacement.start()
        await self._fresh_client()
        return replacement, torn

    @staticmethod
    def _tear_tail(base_dir: Path, nbytes: int = 7) -> str:
        """Truncate ``nbytes`` off the largest frame journal; returns it.

        Seven bytes is always a *torn record*, never a clean boundary: the
        smallest journal record is 20 bytes (8-byte record header plus the
        12-byte fixed entry), so the cut lands strictly inside the final
        record.
        """
        journals = sorted(
            base_dir.glob("journal-shard-*.bin"),
            key=lambda p: p.stat().st_size,
            reverse=True,
        )
        for path in journals:
            size = path.stat().st_size
            if size > nbytes:
                with path.open("r+b") as fh:
                    fh.truncate(size - nbytes)
                return str(path)
        return ""

    @staticmethod
    def _collect_fired(
        shard_proxies: List[FaultyTransport],
        client_proxy: Optional[FaultyTransport],
        schedule: FaultSchedule,
        unfired_process: Dict[int, List[FaultEvent]],
    ) -> List[FaultEvent]:
        """Everything that actually fired: proxy records + popped process faults."""
        fired: List[FaultEvent] = []
        for proxy in shard_proxies:
            fired.extend(proxy.fired)
        if client_proxy is not None:
            fired.extend(client_proxy.fired)
        leftover = {
            id(event)
            for events in unfired_process.values()
            for event in events
        }
        for event in schedule.events:
            if event.kind in ("kill", "sigstop") and id(event) not in leftover:
                fired.append(event)
        fired.sort(key=lambda e: (e.frame, e.target, e.kind))
        return fired
