"""A frame-aware fault-injecting proxy for one cluster leg.

:class:`FaultyTransport` sits between two real peers — client↔router or
router↔shard — and forwards bytes untouched *except* at scheduled frame
counts, where it injects one wire fault (``docs/chaos.md``).  It is
frame-aware in the client→upstream direction: that leg is parsed with the
production :func:`~repro.server.framing.read_frame_payload`, a monotone
counter ticks once per ``reports`` frame (control frames pass through
uncounted), and a :class:`~repro.chaos.schedule.FaultEvent` scheduled at
count *n* fires exactly when frame *n* arrives — deterministic under a
fixed schedule, independent of timing.  The upstream→client direction is a
raw byte pump; replies are never faulted.

The proxy speaks :mod:`repro.transport` on both sides, so the leg it
faults may be TCP *or* the same-host shared-memory ring: ``upstream`` is
either a ``(host, port)`` pair (TCP, the historical form) or any transport
address (``"shm://name"``), and ``start(listen="shm://...")`` accepts on a
ring instead of a socket.  The pumps only consume the duck-typed stream
surface every backend provides, so the fault kinds behave identically —
a ``reset`` aborts a ring link exactly like it aborts a socket.

The counter spans connections: reconnecting (which recovery does) keeps
counting where the last connection stopped, so one schedule addresses the
whole run.  Each event fires **once** (popped on firing, recorded in
:attr:`FaultyTransport.fired`); journal replays inflate later counts,
which shifts — never re-fires — subsequent events.

Fault kinds on this leg:

* ``delay``  — hold the frame for ``arg`` seconds, then forward it.
* ``reset``  — abort both directions mid-frame; the frame is lost.
* ``truncate`` — forward only the first half of the framed bytes, then
  close; the upstream peer sees a mid-frame EOF.
* ``corrupt`` — flip every bit of the payload's first byte (``0xB1`` and
  ``0x7B`` both become invalid magics, so the peer *must* reject — data
  bytes are not flipped because undetectable corruption is a documented
  non-goal, see ``docs/chaos.md``).
* ``stall``  — swallow the frame and black-hole the connection (both
  directions) while keeping it open: the peer's next exchange hangs until
  its own deadline fires, which is exactly the pathology the timeout
  hardening exists for.

``retarget`` repoints the upstream endpoint — the chaos supervisor calls
it after restarting a shard on a fresh port (or a fresh ring generation),
so the router keeps dialing the *proxy* while the proxy follows the shard.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.chaos.schedule import WIRE_KINDS, FaultEvent
from repro.server.framing import FrameError, frame_bytes, read_frame_payload
from repro.transport import Listener
from repro.transport import dial as transport_dial
from repro.transport import serve as transport_serve

__all__ = ["FaultyTransport"]


def _is_reports_payload(payload: bytes) -> bool:
    """Frame-sniff without a decode: binary magic or an early JSON tag."""
    if not payload:
        return False
    if payload[0] == 0xB1:
        return True
    return b'"type":"reports"' in payload[:64] or (
        b'"type": "reports"' in payload[:64]
    )


class _Connection:
    """One proxied connection: the two pumps plus the black-hole flag.

    Readers/writers are duck-typed transport streams — real asyncio TCP
    streams or the shm ring shims; both expose ``transport.abort()``.
    """

    def __init__(self, down_reader: Any, down_writer: Any,
                 up_reader: Any, up_writer: Any) -> None:
        self.down_reader = down_reader
        self.down_writer = down_writer
        self.up_reader = up_reader
        self.up_writer = up_writer
        self.blackhole = False

    def abort(self) -> None:
        for writer in (self.down_writer, self.up_writer):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    def close(self) -> None:
        # Abort-based on purpose: a graceful close waits for the write
        # buffer to drain, and a chaos proxy's peer may (by design) never
        # read again — teardown must not hang on an injected fault.
        self.abort()
        for writer in (self.down_writer, self.up_writer):
            writer.close()


class FaultyTransport:
    """Fault-injecting proxy in front of one upstream endpoint.

    ``upstream`` is a ``(host, port)`` pair (TCP) or a transport address
    string (``"tcp://host:port"``, ``"shm://name"``).
    """

    def __init__(self, name: str,
                 upstream: Union[Tuple[str, int], str],
                 faults: Optional[Dict[int, FaultEvent]] = None) -> None:
        for event in (faults or {}).values():
            if event.kind not in WIRE_KINDS:
                raise ValueError(
                    f"{event.kind!r} is not a wire fault kind"
                )
        self.name = name
        self.upstream_address = self._as_address(upstream)
        self.faults = dict(faults or {})
        #: events that actually fired, in firing order
        self.fired: List[FaultEvent] = []
        #: ``reports`` frames seen client→upstream, across all connections
        self.frames = 0
        self._listener: Optional[Listener] = None
        #: the dialable address this proxy accepts on, once started
        self.address: Optional[str] = None
        self._address: Optional[Tuple[str, int]] = None
        self._tasks: set = set()
        self._conns: List[_Connection] = []

    @staticmethod
    def _as_address(upstream: Union[Tuple[str, int], str]) -> str:
        if isinstance(upstream, str):
            return upstream
        host, port = upstream
        return f"tcp://{host}:{int(port)}"

    @property
    def endpoint(self) -> Tuple[str, int]:
        """The TCP ``(host, port)`` accepted on (shm proxies: ``address``)."""
        if self._address is None:
            raise RuntimeError("transport not started, or listening on a "
                               "non-TCP address — use .address")
        return self._address

    def retarget(self, host: Union[str, Tuple[str, int]],
                 port: Optional[int] = None) -> None:
        """Point new upstream connections at a fresh endpoint.

        Accepts the historical ``retarget(host, port)`` form, a
        ``(host, port)`` pair, or a full transport address string (the shm
        form — a restarted shard binds a fresh ring name).
        """
        if port is not None:
            self.upstream_address = self._as_address((str(host), port))
        else:
            self.upstream_address = self._as_address(host)

    async def start(self, host: str = "127.0.0.1", port: int = 0, *,
                    listen: Optional[str] = None) -> Tuple[str, int]:
        """Bind the accept side; ``listen`` overrides the default TCP bind
        with any transport address (e.g. ``"shm://chaos-client"``).
        Returns the TCP ``(host, port)`` when listening on TCP."""
        if self._listener is not None:
            raise RuntimeError("transport already started")
        if listen is None:
            listen = f"tcp://{host}:{port}"
        self._listener = await transport_serve(self._handle, listen)
        self.address = self._listener.address
        tcp_host = getattr(self._listener, "host", None)
        if tcp_host is not None:
            self._address = (str(tcp_host), int(self._listener.port))
            return self._address
        return ("", 0)

    async def stop(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        for conn in self._conns:
            conn.close()
        self._conns.clear()
        if listener is not None:
            await listener.wait_closed()

    # ----- per-connection plumbing ----------------------------------------------------

    async def _handle(self, down_reader: Any, down_writer: Any) -> None:
        try:
            up = await transport_dial(self.upstream_address)
        except OSError:
            down_writer.close()
            return
        conn = _Connection(down_reader, down_writer, up.reader, up.writer)
        self._conns.append(conn)
        up_task = asyncio.current_task()
        if up_task is not None:
            self._tasks.add(up_task)
        reply_task = asyncio.ensure_future(self._pump_replies(conn))
        self._tasks.add(reply_task)
        try:
            # A black-holed (stalled) connection stays in this loop
            # swallowing frames until the peer gives up and closes; cleanup
            # below then runs exactly as for a normal disconnect.
            await self._pump_frames(conn)
        finally:
            reply_task.cancel()
            conn.close()
            self._tasks.discard(reply_task)
            if up_task is not None:
                self._tasks.discard(up_task)

    async def _pump_replies(self, conn: _Connection) -> None:
        """upstream→client raw byte pump (replies are never faulted)."""
        try:
            while True:
                chunk = await conn.up_reader.read(1 << 16)
                if not chunk or conn.blackhole:
                    break
                conn.down_writer.write(chunk)
                await conn.down_writer.drain()
        except (OSError, asyncio.CancelledError):
            pass

    async def _pump_frames(self, conn: _Connection) -> None:
        """client→upstream frame pump; injects the scheduled faults."""
        try:
            while True:
                try:
                    payload = await read_frame_payload(conn.down_reader)
                except (FrameError, OSError, asyncio.IncompleteReadError):
                    break
                if payload is None:
                    break
                if conn.blackhole:
                    continue  # swallow everything after a stall
                event: Optional[FaultEvent] = None
                if _is_reports_payload(payload):
                    self.frames += 1
                    event = self.faults.pop(self.frames, None)
                if event is not None:
                    self.fired.append(event)
                    if event.kind == "delay":
                        await asyncio.sleep(event.arg)
                    elif event.kind == "reset":
                        conn.abort()
                        return
                    elif event.kind == "truncate":
                        framed = frame_bytes(payload)
                        conn.up_writer.write(framed[: max(1, len(framed) // 2)])
                        try:
                            await conn.up_writer.drain()
                        except OSError:
                            pass
                        return
                    elif event.kind == "corrupt":
                        mutated = bytearray(payload)
                        mutated[0] ^= 0xFF
                        payload = bytes(mutated)
                    elif event.kind == "stall":
                        conn.blackhole = True
                        continue
                try:
                    conn.up_writer.write(frame_bytes(payload))
                    await conn.up_writer.drain()
                except OSError:
                    break
        except asyncio.CancelledError:
            pass
