"""A frame-aware fault-injecting TCP proxy for one cluster leg.

:class:`FaultyTransport` sits between two real peers — client↔router or
router↔shard — and forwards bytes untouched *except* at scheduled frame
counts, where it injects one wire fault (``docs/chaos.md``).  It is
frame-aware in the client→upstream direction: that leg is parsed with the
production :func:`~repro.server.framing.read_frame_payload`, a monotone
counter ticks once per ``reports`` frame (control frames pass through
uncounted), and a :class:`~repro.chaos.schedule.FaultEvent` scheduled at
count *n* fires exactly when frame *n* arrives — deterministic under a
fixed schedule, independent of timing.  The upstream→client direction is a
raw byte pump; replies are never faulted.

The counter spans connections: reconnecting (which recovery does) keeps
counting where the last connection stopped, so one schedule addresses the
whole run.  Each event fires **once** (popped on firing, recorded in
:attr:`FaultyTransport.fired`); journal replays inflate later counts,
which shifts — never re-fires — subsequent events.

Fault kinds on this leg:

* ``delay``  — hold the frame for ``arg`` seconds, then forward it.
* ``reset``  — abort both directions mid-frame; the frame is lost.
* ``truncate`` — forward only the first half of the framed bytes, then
  close; the upstream peer sees a mid-frame EOF.
* ``corrupt`` — flip every bit of the payload's first byte (``0xB1`` and
  ``0x7B`` both become invalid magics, so the peer *must* reject — data
  bytes are not flipped because undetectable corruption is a documented
  non-goal, see ``docs/chaos.md``).
* ``stall``  — swallow the frame and black-hole the connection (both
  directions) while keeping it open: the peer's next exchange hangs until
  its own deadline fires, which is exactly the pathology the timeout
  hardening exists for.

``retarget`` repoints the upstream endpoint — the chaos supervisor calls
it after restarting a shard on a fresh port, so the router keeps dialing
the *proxy* while the proxy follows the shard.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.chaos.schedule import WIRE_KINDS, FaultEvent
from repro.server.framing import FrameError, frame_bytes, read_frame_payload

__all__ = ["FaultyTransport"]


def _is_reports_payload(payload: bytes) -> bool:
    """Frame-sniff without a decode: binary magic or an early JSON tag."""
    if not payload:
        return False
    if payload[0] == 0xB1:
        return True
    return b'"type":"reports"' in payload[:64] or (
        b'"type": "reports"' in payload[:64]
    )


class _Connection:
    """One proxied connection: the two pumps plus the black-hole flag."""

    def __init__(self, down_reader: asyncio.StreamReader,
                 down_writer: asyncio.StreamWriter,
                 up_reader: asyncio.StreamReader,
                 up_writer: asyncio.StreamWriter) -> None:
        self.down_reader = down_reader
        self.down_writer = down_writer
        self.up_reader = up_reader
        self.up_writer = up_writer
        self.blackhole = False

    def abort(self) -> None:
        for writer in (self.down_writer, self.up_writer):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    def close(self) -> None:
        # Abort-based on purpose: a graceful close waits for the write
        # buffer to drain, and a chaos proxy's peer may (by design) never
        # read again — teardown must not hang on an injected fault.
        self.abort()
        for writer in (self.down_writer, self.up_writer):
            writer.close()


class FaultyTransport:
    """Fault-injecting proxy in front of one upstream ``(host, port)``."""

    def __init__(self, name: str, upstream: Tuple[str, int],
                 faults: Optional[Dict[int, FaultEvent]] = None) -> None:
        for event in (faults or {}).values():
            if event.kind not in WIRE_KINDS:
                raise ValueError(
                    f"{event.kind!r} is not a wire fault kind"
                )
        self.name = name
        self.upstream = (upstream[0], int(upstream[1]))
        self.faults = dict(faults or {})
        #: events that actually fired, in firing order
        self.fired: List[FaultEvent] = []
        #: ``reports`` frames seen client→upstream, across all connections
        self.frames = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._address: Optional[Tuple[str, int]] = None
        self._tasks: set = set()
        self._conns: List[_Connection] = []

    @property
    def endpoint(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("transport not started")
        return self._address

    def retarget(self, host: str, port: int) -> None:
        """Point new upstream connections at a fresh ``(host, port)``."""
        self.upstream = (host, int(port))

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("transport already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self._address = (str(sockname[0]), int(sockname[1]))
        return self._address

    async def stop(self) -> None:
        if self._server is not None:
            server, self._server = self._server, None
            server.close()
            await server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        for conn in self._conns:
            conn.close()
        self._conns.clear()

    # ----- per-connection plumbing ----------------------------------------------------

    async def _handle(self, down_reader: asyncio.StreamReader,
                      down_writer: asyncio.StreamWriter) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            down_writer.close()
            return
        conn = _Connection(down_reader, down_writer, up_reader, up_writer)
        self._conns.append(conn)
        up_task = asyncio.current_task()
        if up_task is not None:
            self._tasks.add(up_task)
        reply_task = asyncio.ensure_future(self._pump_replies(conn))
        self._tasks.add(reply_task)
        try:
            # A black-holed (stalled) connection stays in this loop
            # swallowing frames until the peer gives up and closes; cleanup
            # below then runs exactly as for a normal disconnect.
            await self._pump_frames(conn)
        finally:
            reply_task.cancel()
            conn.close()
            self._tasks.discard(reply_task)
            if up_task is not None:
                self._tasks.discard(up_task)

    async def _pump_replies(self, conn: _Connection) -> None:
        """upstream→client raw byte pump (replies are never faulted)."""
        try:
            while True:
                chunk = await conn.up_reader.read(1 << 16)
                if not chunk or conn.blackhole:
                    break
                conn.down_writer.write(chunk)
                await conn.down_writer.drain()
        except (OSError, asyncio.CancelledError):
            pass

    async def _pump_frames(self, conn: _Connection) -> None:
        """client→upstream frame pump; injects the scheduled faults."""
        try:
            while True:
                try:
                    payload = await read_frame_payload(conn.down_reader)
                except (FrameError, OSError, asyncio.IncompleteReadError):
                    break
                if payload is None:
                    break
                if conn.blackhole:
                    continue  # swallow everything after a stall
                event: Optional[FaultEvent] = None
                if _is_reports_payload(payload):
                    self.frames += 1
                    event = self.faults.pop(self.frames, None)
                if event is not None:
                    self.fired.append(event)
                    if event.kind == "delay":
                        await asyncio.sleep(event.arg)
                    elif event.kind == "reset":
                        conn.abort()
                        return
                    elif event.kind == "truncate":
                        framed = frame_bytes(payload)
                        conn.up_writer.write(framed[: max(1, len(framed) // 2)])
                        try:
                            await conn.up_writer.drain()
                        except OSError:
                            pass
                        return
                    elif event.kind == "corrupt":
                        mutated = bytearray(payload)
                        mutated[0] ^= 0xFF
                        payload = bytes(mutated)
                    elif event.kind == "stall":
                        conn.blackhole = True
                        continue
                try:
                    conn.up_writer.write(frame_bytes(payload))
                    await conn.up_writer.drain()
                except OSError:
                    break
        except asyncio.CancelledError:
            pass
