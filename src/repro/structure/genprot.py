"""Algorithm GenProt (Section 6): approximate-to-pure LDP transformation.

Given any non-interactive (ε, δ)-LDP protocol M with local randomizers A_i,
GenProt produces a pure 10ε-LDP protocol with essentially the same utility:

1. For every user i and candidate index t ∈ [T], an *input-independent* public
   string ``y_{i,t} ~ A_i(⊥)`` is published.
2. User i computes, for each t, the rejection-sampling probability
   ``p_{i,t} = (1/2) Pr[A_i(x_i) = y_{i,t}] / Pr[A_i(⊥) = y_{i,t}]``,
   clamped to ``[e^{-2ε}/2, e^{2ε}/2]`` (values outside the range are replaced
   by 1/2 — this is where approximate privacy's rare bad outcomes are removed,
   which is why the result is *purely* private).
3. She samples a Bernoulli bit b_{i,t} for each t, lets H_i be the accepted
   indices (or all of [T] if none were accepted), and sends a uniformly random
   ``g_i ∈ H_i`` — just ``ceil(log2 T)`` bits.
4. The server runs the original post-processing on ``(y_{1,g_1}, ..., y_{n,g_n})``.

Theorem 6.1: the transformation is 10ε-LDP whenever ``ε <= 1/4`` and
``T >= 5 ln(1/ε)``, and the output distribution is within total variation
``n((1/2+ε)^T + 6Tδe^ε/(1-e^{-ε}))`` of the original protocol's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.bounds import genprot_report_bits, genprot_tv_distance
from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class GenProtReport:
    """What one user sends (the index g_i) plus the surrogate report it selects.

    ``selected_report`` is ``public_strings[chosen_index]`` — the value the
    server feeds to the original protocol's post-processing.  ``accepted`` is
    whether H_i was non-empty (it is public information in the sense that it
    can be derived from g_i and the public strings only with the user's help;
    it is kept for diagnostics and the utility accounting of Lemma 6.4).
    """

    chosen_index: int
    selected_report: object
    accepted: bool


class GenProt:
    """The GenProt transformation applied to a single local randomizer type.

    Parameters
    ----------
    randomizer:
        The (ε, δ)-LDP local randomizer A to be transformed.  It must be able
        to evaluate ``log_prob`` (the rejection probabilities need the
        likelihood ratio) and to sample with input ``None`` (the ⊥ input).
    num_candidates:
        The paper's T.  ``None`` derives ``T = ceil(2 ln(2 n / β))`` at run
        time from the utility target ``beta`` (Theorem 6.1's discussion).
    beta:
        Target total-variation utility loss used when deriving T.
    """

    def __init__(self, randomizer: LocalRandomizer,
                 num_candidates: Optional[int] = None,
                 beta: float = 0.05) -> None:
        if not isinstance(randomizer, LocalRandomizer):
            raise TypeError("randomizer must be a LocalRandomizer")
        self.randomizer = randomizer
        self.base_epsilon = float(randomizer.epsilon)
        self.base_delta = float(randomizer.delta)
        self.beta = check_probability(beta, "beta", allow_zero=False, allow_one=False)
        if num_candidates is not None:
            check_positive_int(num_candidates, "num_candidates")
        self._num_candidates = num_candidates

    # ----- parameters ------------------------------------------------------------------

    def candidates_for(self, num_users: int) -> int:
        """T for a given number of users.

        Chosen so that the empty-acceptance term of Theorem 6.1 satisfies
        ``n (1/2 + ε)^T <= β/2``, i.e. ``T = ln(2n/β) / ln(1/(1/2 + ε))``
        (the paper's ``T = 2 ln(2n/β)`` corresponds to the small-ε limit), and
        at least the theorem's minimum ``5 ln(1/ε)``.
        """
        check_positive_int(num_users, "num_users")
        if self._num_candidates is not None:
            return self._num_candidates
        rate = math.log(1.0 / (0.5 + min(self.base_epsilon, 0.49)))
        derived = int(math.ceil(math.log(2.0 * num_users / self.beta) / rate))
        return max(derived, self.minimum_candidates())

    def minimum_candidates(self) -> int:
        """Theorem 6.1's lower bound on T: ``5 ln(1/ε)`` (and at least 2)."""
        return max(2, int(math.ceil(5.0 * math.log(1.0 / min(self.base_epsilon, 0.9999)))))

    @property
    def transformed_epsilon(self) -> float:
        """The pure-DP guarantee of the transformed protocol: 10ε."""
        return 10.0 * self.base_epsilon

    def report_bits(self, num_users: int) -> int:
        """Per-user communication of the transformed protocol: ceil(log2 T) bits."""
        return genprot_report_bits(self.candidates_for(num_users))

    def utility_bound(self, num_users: int) -> float:
        """Theorem 6.1's TV-distance bound between the transformed and original protocols."""
        return genprot_tv_distance(num_users, self.base_epsilon, self.base_delta,
                                   self.candidates_for(num_users))

    def theorem_conditions_hold(self, num_users: int) -> bool:
        """Whether (ε, δ, T) satisfy the hypotheses of Theorem 6.1."""
        T = self.candidates_for(num_users)
        if self.base_epsilon > 0.25:
            return False
        if T < 5.0 * math.log(1.0 / self.base_epsilon):
            return False
        if self.base_delta > 0:
            cap = (1.0 - math.exp(-self.base_epsilon)) / (
                4.0 * self.base_delta * math.exp(self.base_epsilon) * num_users)
            if T > cap:
                return False
        return True

    # ----- per-user transformation ----------------------------------------------------------

    def transform_user(self, x, rng: RandomState = None,
                       num_candidates: Optional[int] = None) -> GenProtReport:
        """Run steps 1-2 of GenProt for a single user holding ``x``."""
        gen = as_generator(rng)
        T = num_candidates or self.candidates_for(1024)
        public_strings = [self.randomizer.randomize(None, gen) for _ in range(T)]
        return self._select(x, public_strings, gen)

    def _select(self, x, public_strings: Sequence, gen: np.random.Generator) -> GenProtReport:
        epsilon = self.base_epsilon
        low = math.exp(-2.0 * epsilon) / 2.0
        high = math.exp(2.0 * epsilon) / 2.0
        probabilities = np.empty(len(public_strings))
        for t, y in enumerate(public_strings):
            log_ratio = (self.randomizer.log_prob(x, y)
                         - self.randomizer.log_prob(None, y))
            p = 0.5 * math.exp(log_ratio)
            if not low <= p <= high:
                p = 0.5
            probabilities[t] = p
        accepted_bits = gen.random(len(public_strings)) < probabilities
        accepted_indices = np.nonzero(accepted_bits)[0]
        accepted = accepted_indices.size > 0
        pool = accepted_indices if accepted else np.arange(len(public_strings))
        chosen = int(pool[gen.integers(0, pool.size)])
        return GenProtReport(chosen_index=chosen,
                             selected_report=public_strings[chosen],
                             accepted=accepted)

    # ----- whole-protocol execution -----------------------------------------------------------

    def run(self, values: Sequence, rng: RandomState = None) -> List[GenProtReport]:
        """Transform every user's report; the caller aggregates the surrogates.

        ``values[i]`` is user i's input to the original randomizer.  The
        returned reports' ``selected_report`` fields are distributed (up to the
        Theorem 6.1 TV bound) like ``A_1(x_1), ..., A_n(x_n)``, so any
        post-processing of the original protocol can be applied to them
        unchanged — that is the content of Lemma 6.4.
        """
        gen = as_generator(rng)
        values = list(values)
        T = self.candidates_for(max(len(values), 1))
        reports = []
        for x in values:
            public_strings = [self.randomizer.randomize(None, gen) for _ in range(T)]
            reports.append(self._select(x, public_strings, gen))
        return reports

    def surrogate_reports(self, values: Sequence, rng: RandomState = None) -> List:
        """Convenience: just the selected surrogate reports, in user order."""
        return [r.selected_report for r in self.run(values, rng)]

    # ----- privacy audit ------------------------------------------------------------------------

    def empirical_index_privacy(self, x, x_prime, num_trials: int = 2000,
                                num_candidates: Optional[int] = None,
                                rng: RandomState = None) -> float:
        """Empirical bound on the privacy loss of the *sent message* g_i.

        For a fixed draw of the public strings the user's message is her index
        g_i ∈ [T]; this estimates ``max_g ln(Pr[g | x] / Pr[g | x'])`` by
        Monte-Carlo over ``num_trials`` resamplings of the selection
        randomness, holding the public strings fixed (as the privacy proof of
        Lemma 6.2 does).  The estimate should stay below 10ε + sampling noise.
        """
        gen = as_generator(rng)
        T = num_candidates or self.candidates_for(1024)
        public_strings = [self.randomizer.randomize(None, gen) for _ in range(T)]
        counts_x = np.zeros(T)
        counts_x_prime = np.zeros(T)
        for _ in range(num_trials):
            counts_x[self._select(x, public_strings, gen).chosen_index] += 1
            counts_x_prime[self._select(x_prime, public_strings, gen).chosen_index] += 1
        # Laplace smoothing keeps the ratio finite for unvisited indices.
        p = (counts_x + 1.0) / (num_trials + T)
        q = (counts_x_prime + 1.0) / (num_trials + T)
        return float(np.max(np.abs(np.log(p / q))))
