"""Approximate composed randomized response (Theorem 5.1).

The paper exhibits, for every β > 0, a *pure* ``ε̃ = 6ε sqrt(k ln(1/β))``-DP
algorithm M̃ on k-bit inputs whose output is, with probability 1-β, identical
in distribution to the k-fold composition M = (M_1, ..., M_k) of binary
randomized response — i.e. pure local privacy already enjoys the sqrt(k)
advanced-composition behaviour for this canonical mechanism.

Construction (Algorithm M̃): sample y ~ M(x); if the Hamming distance
d_H(x, y) lies in the "good spherical shell"

    G_x = { y : k/(e^ε+1) - sqrt(k ln(2/β)/2) <= d_H(x,y) <= k/(e^ε+1) + sqrt(k ln(2/β)/2) }

output y, otherwise output a uniform element of {0,1}^k \\ G_x.

Because every probability in the construction depends on y only through
d_H(x, y), all quantities (likelihoods, TV distance to the true composition,
worst-case privacy ratios) are computed exactly by summing over the k+1
distance classes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int, check_probability


def _log_binom(k: int, d: np.ndarray) -> np.ndarray:
    """log C(k, d), vectorised."""
    d = np.asarray(d, dtype=float)
    return gammaln(k + 1) - gammaln(d + 1) - gammaln(k - d + 1)


class ApproximateComposedRandomizedResponse(LocalRandomizer):
    """The pure-DP surrogate M̃ for the k-fold composition of randomized response.

    Parameters
    ----------
    num_bits:
        k — the number of composed randomized-response invocations.
    epsilon:
        Per-bit privacy parameter ε of the underlying randomized response.
    beta:
        Accuracy parameter: M̃(x) agrees with M(x) in distribution except with
        probability β.

    Notes
    -----
    ``epsilon`` (the attribute inherited from :class:`LocalRandomizer`) is set
    to the *composed* guarantee ε̃ = 6ε sqrt(k ln(1/β)) proved in Theorem 5.1;
    the per-bit parameter is kept in :attr:`per_bit_epsilon`.
    """

    def __init__(self, num_bits: int, epsilon: float, beta: float) -> None:
        self.num_bits = check_positive_int(num_bits, "num_bits")
        self.per_bit_epsilon = check_epsilon(epsilon)
        self.beta = check_probability(beta, "beta", allow_zero=False, allow_one=False)
        self.delta = 0.0
        self.epsilon = self.composed_epsilon

        k = self.num_bits
        self._flip_prob = 1.0 / (math.exp(epsilon) + 1.0)
        self._keep_prob = 1.0 - self._flip_prob
        center = k * self._flip_prob
        half_width = math.sqrt(k * math.log(2.0 / beta) / 2.0)
        self._low = center - half_width
        self._high = center + half_width

        distances = np.arange(k + 1)
        self._in_shell = (distances >= self._low) & (distances <= self._high)
        self._log_counts = _log_binom(k, distances)
        self._log_pmf = (self._log_counts
                         + distances * math.log(self._flip_prob)
                         + (k - distances) * math.log(self._keep_prob))
        # Probability that M(x) leaves the good shell, and the size of the
        # complement — both independent of x by symmetry.
        outside = ~self._in_shell
        if outside.any():
            self._log_prob_outside = float(logsumexp(self._log_pmf[outside]))
            self._log_complement_size = float(logsumexp(self._log_counts[outside]))
        else:  # the shell covers everything: M̃ is exactly M
            self._log_prob_outside = -math.inf
            self._log_complement_size = -math.inf

    # ----- theorem-level quantities --------------------------------------------------

    @property
    def composed_epsilon(self) -> float:
        """Theorem 5.1's privacy guarantee ε̃ = 6ε sqrt(k ln(1/β))."""
        return 6.0 * self.per_bit_epsilon * math.sqrt(
            self.num_bits * math.log(1.0 / self.beta))

    @property
    def shell_bounds(self) -> Tuple[float, float]:
        """The Hamming-distance band defining the good shell G_x."""
        return self._low, self._high

    def theorem_conditions_hold(self) -> bool:
        """Whether (β, ε, k) satisfy the hypotheses of Theorem 5.1.

        The theorem requires ``β < (ε sqrt(k) / 2(k+1))^{2/3}`` and
        ``ε̃ = 6ε sqrt(k ln(1/β)) <= 1``.
        """
        k = self.num_bits
        beta_cap = (self.per_bit_epsilon * math.sqrt(k) / (2.0 * (k + 1))) ** (2.0 / 3.0)
        return self.beta < beta_cap and self.composed_epsilon <= 1.0

    def escape_probability(self) -> float:
        """Pr[M(x) ∉ G_x] — also an upper bound on the TV distance to M(x)."""
        return math.exp(self._log_prob_outside) if np.isfinite(self._log_prob_outside) else 0.0

    # ----- the true composition M ------------------------------------------------------

    def compose_true(self, x: Sequence[int], rng: RandomState = None) -> np.ndarray:
        """Sample from the exact composition M(x) = (M_1(x), ..., M_k(x))."""
        bits = self._validate_bits(x)
        gen = as_generator(rng)
        flips = gen.random(self.num_bits) < self._flip_prob
        return np.where(flips, 1 - bits, bits).astype(np.int8)

    # ----- LocalRandomizer interface ------------------------------------------------------

    @property
    def null_input(self) -> Tuple[int, ...]:
        return tuple([0] * self.num_bits)

    def randomize(self, x, rng: RandomState = None) -> np.ndarray:
        bits = self._validate_bits(self.resolve_input(x))
        gen = as_generator(rng)
        sample = self.compose_true(bits, gen)
        distance = int(np.count_nonzero(sample != bits))
        if self._in_shell[distance]:
            return sample
        return self._sample_outside_shell(bits, gen)

    def _sample_outside_shell(self, bits: np.ndarray, gen: np.random.Generator) -> np.ndarray:
        """Uniform sample from {0,1}^k \\ G_x, by distance class then positions."""
        outside = np.nonzero(~self._in_shell)[0]
        if outside.size == 0:  # pragma: no cover - shell covers everything
            return self.compose_true(bits, gen)
        log_weights = self._log_counts[outside]
        weights = np.exp(log_weights - log_weights.max())
        weights /= weights.sum()
        distance = int(gen.choice(outside, p=weights))
        positions = gen.choice(self.num_bits, size=distance, replace=False)
        out = bits.copy()
        out[positions] = 1 - out[positions]
        return out.astype(np.int8)

    def log_prob(self, x, report) -> float:
        bits = self._validate_bits(self.resolve_input(x))
        report_bits = self._validate_bits(report)
        distance = int(np.count_nonzero(report_bits != bits))
        if self._in_shell[distance]:
            return (distance * math.log(self._flip_prob)
                    + (self.num_bits - distance) * math.log(self._keep_prob))
        return self._log_prob_outside - self._log_complement_size

    def report_space(self) -> Optional[List]:
        if self.num_bits > 14:
            return None
        space = []
        for mask in range(1 << self.num_bits):
            space.append(np.array([(mask >> j) & 1 for j in range(self.num_bits)],
                                  dtype=np.int8))
        return space

    @property
    def report_bits(self) -> float:
        return float(self.num_bits)

    # ----- exact analyses ------------------------------------------------------------------

    def tv_distance_to_composition(self) -> float:
        """Exact total variation distance between M̃(x) and M(x) (independent of x).

        Summed over the distance classes outside the shell:
        ``TV = (1/2) Σ_d C(k,d) | P_out/|complement| - flip^d keep^{k-d} |``.
        """
        outside = np.nonzero(~self._in_shell)[0]
        if outside.size == 0:
            return 0.0
        uniform_log_prob = self._log_prob_outside - self._log_complement_size
        total = 0.0
        k = self.num_bits
        for d in outside:
            count = math.exp(self._log_counts[d])
            p_tilde = math.exp(uniform_log_prob)
            p_true = math.exp(d * math.log(self._flip_prob)
                              + (k - d) * math.log(self._keep_prob))
            total += count * abs(p_tilde - p_true)
        return 0.5 * total

    def worst_case_privacy_loss(self, group_distance: Optional[int] = None) -> float:
        """Exact worst-case privacy loss ``max_y ln(P[M̃(x)=y]/P[M̃(x')=y])``.

        ``group_distance`` is the Hamming distance between x and x' (defaults
        to the worst case k).  The maximisation runs over the joint distance
        profile (d_H(x, y), d_H(x', y)) which, for inputs at distance h, ranges
        over all pairs (d, d') with ``|d - d'| <= h`` and ``d + d' >= h`` and
        matching parity; probabilities depend only on the profile.
        """
        k = self.num_bits
        h = k if group_distance is None else int(group_distance)
        if not 1 <= h <= k:
            raise ValueError("group_distance must lie in [1, k]")
        uniform_log_prob = self._log_prob_outside - self._log_complement_size

        def log_prob_at_distance(d: int) -> float:
            if self._in_shell[d]:
                return (d * math.log(self._flip_prob)
                        + (k - d) * math.log(self._keep_prob))
            return uniform_log_prob

        worst = 0.0
        for d in range(k + 1):
            for d_prime in range(k + 1):
                if abs(d - d_prime) > h or d + d_prime < h:
                    continue
                if (d + d_prime - h) % 2 != 0:
                    continue
                loss = abs(log_prob_at_distance(d) - log_prob_at_distance(d_prime))
                worst = max(worst, loss)
        return worst

    # ----- helpers ---------------------------------------------------------------------------

    def _validate_bits(self, bits) -> np.ndarray:
        arr = np.asarray(bits, dtype=np.int64).ravel()
        if arr.shape != (self.num_bits,):
            raise ValueError(f"expected {self.num_bits} bits, got shape {arr.shape}")
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError("inputs must be bit vectors")
        return arr.astype(np.int8)
