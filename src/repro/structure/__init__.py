"""Structural results on local privacy (Sections 5 and 6).

* :mod:`repro.structure.composed_rr` — Theorem 5.1: a pure
  ``6ε sqrt(k ln(1/β))``-DP algorithm whose output is β-close in total
  variation to the k-fold composition of randomized response.
* :mod:`repro.structure.genprot` — Algorithm GenProt (Theorem 6.1): the
  generic rejection-sampling transformation from any non-interactive
  (ε, δ)-LDP protocol to a pure 10ε-LDP protocol with O(log log n)-bit
  reports and negligible utility loss.
"""

from repro.structure.composed_rr import ApproximateComposedRandomizedResponse
from repro.structure.genprot import GenProt, GenProtReport

__all__ = [
    "ApproximateComposedRandomizedResponse",
    "GenProt",
    "GenProtReport",
]
