"""Synthetic value distributions for heavy-hitters experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int, check_probability


def uniform_workload(num_users: int, domain_size: int,
                     rng: RandomState = None) -> np.ndarray:
    """Every user holds an independent uniform value — the no-heavy-hitters case."""
    check_positive_int(num_users, "num_users")
    check_positive_int(domain_size, "domain_size")
    gen = as_generator(rng)
    return gen.integers(0, domain_size, size=num_users, dtype=np.int64)


def zipf_workload(num_users: int, domain_size: int, exponent: float = 1.1,
                  support: int = 10_000, rng: RandomState = None,
                  shuffle_ids: bool = True) -> np.ndarray:
    """Zipf-distributed values over a (large) domain.

    A Zipf(``exponent``) distribution over ``support`` popular items is
    sampled; the popular items are mapped to ``support`` distinct identifiers
    spread over the full domain (uniformly random distinct ids when
    ``shuffle_ids`` is true, the low integers otherwise).  This models URL /
    word popularity: a small head of very frequent values inside an enormous
    identifier space.
    """
    check_positive_int(num_users, "num_users")
    check_positive_int(domain_size, "domain_size")
    check_positive_int(support, "support")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    support = min(support, domain_size)
    gen = as_generator(rng)
    ranks = np.arange(1, support + 1, dtype=float)
    probabilities = ranks ** (-exponent)
    probabilities /= probabilities.sum()
    indices = gen.choice(support, size=num_users, p=probabilities)
    if shuffle_ids:
        if domain_size <= 2 * support:
            ids = gen.permutation(domain_size)[:support]
        else:
            ids = np.unique(gen.integers(0, domain_size, size=3 * support))
            gen.shuffle(ids)
            while ids.size < support:  # pragma: no cover - astronomically unlikely
                extra = gen.integers(0, domain_size, size=support)
                ids = np.unique(np.concatenate([ids, extra]))
            ids = ids[:support]
    else:
        ids = np.arange(support)
    return ids[indices].astype(np.int64)


@dataclass(frozen=True)
class PlantedWorkload:
    """A workload with explicitly planted heavy hitters.

    Attributes
    ----------
    values:
        The per-user values (length n).
    heavy_elements:
        The planted heavy elements, heaviest first.
    heavy_frequencies:
        Exact multiplicities of the planted elements.
    """

    values: np.ndarray
    heavy_elements: tuple
    heavy_frequencies: tuple

    @property
    def num_users(self) -> int:
        return int(self.values.size)

    def true_frequency(self, x: int) -> int:
        return int(np.count_nonzero(self.values == int(x)))

    def as_dict(self) -> Dict[int, int]:
        return {int(x): int(f)
                for x, f in zip(self.heavy_elements, self.heavy_frequencies,
                                strict=True)}


def planted_workload(num_users: int, domain_size: int,
                     heavy_fractions: Sequence[float],
                     background: str = "uniform",
                     background_support: int = 10_000,
                     heavy_elements: Optional[Sequence[int]] = None,
                     rng: RandomState = None) -> PlantedWorkload:
    """Plant heavy hitters with the given frequency fractions over a background.

    Parameters
    ----------
    heavy_fractions:
        Fraction of users assigned to each planted element (e.g. ``[0.15, 0.1]``
        plants two heavy hitters holding 15% and 10% of the users).  Their sum
        must be below 1.
    background:
        ``"uniform"`` or ``"zipf"`` distribution for the remaining users.
    heavy_elements:
        Identifiers for the planted elements (random distinct ids by default).
    """
    check_positive_int(num_users, "num_users")
    check_positive_int(domain_size, "domain_size")
    fractions = [check_probability(f, "heavy fraction", allow_zero=False,
                                   allow_one=False) for f in heavy_fractions]
    if sum(fractions) >= 1.0:
        raise ValueError("heavy fractions must sum to less than 1")
    gen = as_generator(rng)

    if heavy_elements is None:
        heavy_elements = []
        seen = set()
        while len(heavy_elements) < len(fractions):
            candidate = int(gen.integers(0, domain_size))
            if candidate not in seen:
                seen.add(candidate)
                heavy_elements.append(candidate)
    heavy_elements = [int(x) for x in heavy_elements]
    if len(heavy_elements) != len(fractions):
        raise ValueError("need exactly one element per heavy fraction")

    counts = [int(round(f * num_users)) for f in fractions]
    total_heavy = sum(counts)
    num_background = num_users - total_heavy
    if background == "uniform":
        tail = uniform_workload(max(num_background, 1), domain_size, gen)[:num_background]
    elif background == "zipf":
        tail = zipf_workload(max(num_background, 1), domain_size,
                             support=background_support, rng=gen)[:num_background]
    else:
        raise ValueError("background must be 'uniform' or 'zipf'")

    segments: List[np.ndarray] = [np.full(c, x, dtype=np.int64)
                                  for x, c in zip(heavy_elements, counts, strict=True)]
    segments.append(tail.astype(np.int64))
    values = np.concatenate(segments)
    gen.shuffle(values)

    order = np.argsort(-np.asarray(counts))
    heavy_sorted = tuple(heavy_elements[i] for i in order)
    counts_sorted = tuple(int(counts[i]) for i in order)
    return PlantedWorkload(values=values, heavy_elements=heavy_sorted,
                           heavy_frequencies=counts_sorted)
