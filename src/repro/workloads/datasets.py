"""String-keyed synthetic datasets (URL telemetry, new-word discovery).

The industrial deployments the paper cites operate on strings: Chrome home
pages (RAPPOR [12]) and newly typed words (Apple [33]).  The protocols in this
library operate on integer domains, so :class:`StringDomain` provides the
string <-> integer mapping: strings are embedded into ``[0, |X|)`` via their
character encoding (injectively for bounded-length strings over a fixed
alphabet), which is how "the space of all reasonable-length URL domains"
becomes the integer domain X of the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int
from repro.workloads.distributions import planted_workload


@dataclass(frozen=True)
class StringDomain:
    """Injective encoding of bounded-length strings into an integer domain.

    Strings over ``alphabet`` of length at most ``max_length`` are encoded as
    integers base ``len(alphabet) + 1`` (the +1 reserves digit 0 as the
    end-of-string marker, which keeps the encoding prefix-free and injective).
    """

    alphabet: str
    max_length: int

    def __post_init__(self) -> None:
        check_positive_int(self.max_length, "max_length")
        if len(set(self.alphabet)) != len(self.alphabet) or not self.alphabet:
            raise ValueError("alphabet must be non-empty with distinct characters")

    @property
    def base(self) -> int:
        return len(self.alphabet) + 1

    @property
    def domain_size(self) -> int:
        """Number of representable strings (the |X| of the protocols)."""
        return self.base ** self.max_length

    def encode(self, text: str) -> int:
        """Map a string to its integer identifier."""
        if len(text) > self.max_length:
            raise ValueError(f"string longer than max_length={self.max_length}")
        value = 0
        for position, char in enumerate(text):
            digit = self.alphabet.index(char) + 1
            value += digit * (self.base ** position)
        return value

    def decode(self, value: int) -> str:
        """Inverse of :meth:`encode`."""
        if not 0 <= value < self.domain_size:
            raise ValueError("value outside the string domain")
        chars: List[str] = []
        remaining = int(value)
        while remaining:
            digit = remaining % self.base
            remaining //= self.base
            if digit == 0:
                raise ValueError("value does not encode a valid string")
            chars.append(self.alphabet[digit - 1])
        return "".join(chars)


_URL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-."
_WORD_ALPHABET = "abcdefghijklmnopqrstuvwxyz'"


def _random_strings(count: int, alphabet: str, min_length: int, max_length: int,
                    gen: np.random.Generator) -> List[str]:
    out = []
    for _ in range(count):
        length = int(gen.integers(min_length, max_length + 1))
        letters = gen.integers(0, len(alphabet), size=length)
        out.append("".join(alphabet[i] for i in letters))
    return out


def synthetic_url_dataset(num_users: int, num_popular: int = 8,
                          popular_mass: float = 0.6, max_length: int = 10,
                          rng: RandomState = None
                          ) -> Tuple[np.ndarray, StringDomain, Dict[str, int]]:
    """A Chrome-telemetry-like dataset: popular home-page URLs plus a long tail.

    Returns ``(values, domain, popular)`` where ``values`` are the per-user
    integer-encoded URLs, ``domain`` is the string codec, and ``popular`` maps
    each planted popular URL string to its exact multiplicity.
    """
    check_positive_int(num_users, "num_users")
    check_positive_int(num_popular, "num_popular")
    gen = as_generator(rng)
    domain = StringDomain(alphabet=_URL_ALPHABET, max_length=max_length)

    popular_urls = [f"{name}.com" for name in
                    _random_strings(num_popular, _URL_ALPHABET[:26], 3, max_length - 4, gen)]
    # Zipf-shaped split of the popular mass over the popular URLs.
    ranks = np.arange(1, num_popular + 1, dtype=float)
    weights = ranks ** -1.0
    fractions = popular_mass * weights / weights.sum()

    workload = planted_workload(
        num_users=num_users,
        domain_size=domain.domain_size,
        heavy_fractions=list(fractions),
        heavy_elements=[domain.encode(url) for url in popular_urls],
        background="uniform",
        rng=gen,
    )
    popular = {url: workload.true_frequency(domain.encode(url)) for url in popular_urls}
    return workload.values, domain, popular


def synthetic_word_dataset(num_users: int, new_words: Sequence[str] | None = None,
                           adoption: float = 0.5, max_length: int = 10,
                           rng: RandomState = None
                           ) -> Tuple[np.ndarray, StringDomain, Dict[str, int]]:
    """An iOS-new-word-discovery-like dataset: a few trending words plus noise.

    ``adoption`` is the total fraction of users typing one of the trending
    words; the remainder type effectively unique strings.
    """
    check_positive_int(num_users, "num_users")
    gen = as_generator(rng)
    domain = StringDomain(alphabet=_WORD_ALPHABET, max_length=max_length)
    if new_words is None:
        new_words = _random_strings(5, _WORD_ALPHABET[:26], 4, max_length, gen)
    new_words = list(new_words)
    ranks = np.arange(1, len(new_words) + 1, dtype=float)
    weights = ranks ** -1.2
    fractions = adoption * weights / weights.sum()

    workload = planted_workload(
        num_users=num_users,
        domain_size=domain.domain_size,
        heavy_fractions=list(fractions),
        heavy_elements=[domain.encode(word) for word in new_words],
        background="uniform",
        rng=gen,
    )
    trending = {word: workload.true_frequency(domain.encode(word)) for word in new_words}
    return workload.values, domain, trending
