"""Synthetic workloads standing in for industrial telemetry data.

The paper's motivating applications are Chrome URL telemetry and iOS new-word
discovery; neither dataset is public, so the benchmarks use synthetic
equivalents (DESIGN.md, substitution 3):

* :func:`zipf_workload` — Zipf-distributed values over a large domain, the
  standard model of URL/word popularity;
* :func:`planted_workload` — explicitly planted heavy hitters over a uniform
  or Zipfian background, so that recall at a known frequency is measurable;
* :mod:`repro.workloads.datasets` — generators producing string-keyed
  "URL"/"word" datasets together with the integer encoding the protocols use.
"""

from repro.workloads.datasets import (
    StringDomain,
    synthetic_url_dataset,
    synthetic_word_dataset,
)
from repro.workloads.distributions import (
    PlantedWorkload,
    planted_workload,
    uniform_workload,
    zipf_workload,
)

__all__ = [
    "zipf_workload",
    "uniform_workload",
    "planted_workload",
    "PlantedWorkload",
    "synthetic_url_dataset",
    "synthetic_word_dataset",
    "StringDomain",
]
