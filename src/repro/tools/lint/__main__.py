"""``python -m repro.tools.lint`` entry point."""

import sys

from repro.tools.lint.engine import main

if __name__ == "__main__":
    sys.exit(main())
