"""Repo-native static analysis (``python -m repro.tools.lint src/ tests/``).

Five AST rule families enforce the invariants the test suite cannot see
(they are properties of *code shape*, not of any one run): RPL1
determinism, RPL2 exact-integer aggregator state, RPL3 async safety,
RPL4 wire-schema agreement with ``docs/wire-protocol.md``, RPL5
protocol-registry contracts.  The catalog, the suppression-pragma policy,
and the guide to adding a rule live in ``docs/static-analysis.md``.
"""

from repro.tools.lint.diagnostics import Diagnostic, Severity
from repro.tools.lint.engine import (
    LintConfig,
    LintEngine,
    ModuleContext,
    Rule,
    lint_paths,
    main,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintEngine",
    "ModuleContext",
    "Rule",
    "Severity",
    "lint_paths",
    "main",
]
