"""The rule engine: one AST walk per file, pluggable rule dispatch.

:class:`LintEngine` parses every target file once, then performs a single
pre-order walk of the tree.  Rules never walk the tree themselves — they
register ``visit_<NodeType>`` methods and the engine dispatches each node
to every interested rule, so adding a rule family costs one class, not one
traversal (see ``docs/static-analysis.md`` §"adding a rule").

Rules see a :class:`ModuleContext` carrying everything positional checks
need: the ancestor stack (``enclosing``), the import alias table
(``resolve_dotted`` maps ``np.random.rand`` to ``numpy.random.rand``), the
repo zone the file lives in (``zone`` — the ``repro`` subpackage), and
``report(...)``, which applies ``--select``/``--ignore`` filtering and
suppression pragmas before recording a :class:`Diagnostic`.

Cross-module rules (the protocol-contract family) additionally implement
``finish(engine)``, called once after every file has been walked.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.tools.lint.diagnostics import Diagnostic, PragmaIndex, selected

__all__ = ["LintConfig", "LintEngine", "ModuleContext", "Rule", "lint_paths"]

#: statement fields evaluated *after* the rest of the node at runtime;
#: visiting them last keeps the pre-order walk aligned with execution
#: order, which the await-race detector depends on (``self.x = await f()``
#: reads/awaits before it stores).
_LAST_FIELDS = {
    ast.Assign: ("targets",),
    ast.AnnAssign: ("target",),
    ast.AugAssign: ("target",),
    ast.For: ("target", "body", "orelse"),
    ast.AsyncFor: ("target", "body", "orelse"),
}


class LintConfig:
    """Run-wide options shared by the engine and the rules."""

    def __init__(self, select: Sequence[str] = (), ignore: Sequence[str] = (),
                 wire_doc: Optional[Path] = None) -> None:
        self.select = tuple(select)
        self.ignore = tuple(ignore)
        #: explicit path of the wire-schema document; when ``None`` each
        #: RPL4-checked file looks for ``docs/wire-protocol.md`` upward
        #: from its own location.
        self.wire_doc = Path(wire_doc) if wire_doc is not None else None


class ModuleContext:
    """Per-file state handed to every rule callback."""

    def __init__(self, path: Path, source: str, tree: ast.Module,
                 config: LintConfig) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.pragmas = PragmaIndex.parse(source)
        self.diagnostics: List[Diagnostic] = []
        #: ancestor chain of the node currently being visited (module first)
        self.stack: List[ast.AST] = []
        #: import alias table: local name -> fully qualified dotted prefix
        self.aliases: Dict[str, str] = {}
        #: free-form per-rule scratch space, keyed by rule family
        self.facts: Dict[str, object] = {}
        parts = path.parts
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            self.package_parts: Tuple[str, ...] = parts[anchor + 1:]
        else:
            self.package_parts = (path.name,)
        self._collect_aliases(tree)

    # ----- path classification -------------------------------------------------------

    @property
    def zone(self) -> str:
        """The ``repro`` subpackage this file belongs to (``""`` at top level)."""
        return self.package_parts[0] if len(self.package_parts) > 1 else ""

    @property
    def module_file(self) -> str:
        """File name relative to the ``repro`` package, e.g. ``cli.py``."""
        return "/".join(self.package_parts)

    # ----- imports -------------------------------------------------------------------

    def _collect_aliases(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Dotted source form of a Name/Attribute chain, or ``None``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Dotted form with the leading import alias expanded.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        module did ``import numpy as np``; ``time()`` resolves to
        ``time.time`` under ``from time import time``.
        """
        dotted = self.dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        expanded = self.aliases.get(head)
        if expanded is None:
            return dotted
        return f"{expanded}.{rest}" if rest else expanded

    # ----- ancestry ------------------------------------------------------------------

    def enclosing(self, *types: Type[ast.AST]) -> Optional[ast.AST]:
        """Nearest ancestor of any of the given node types."""
        for node in reversed(self.stack):
            if isinstance(node, types):
                return node
        return None

    def enclosing_function(self) -> Optional[ast.AST]:
        return self.enclosing(ast.FunctionDef, ast.AsyncFunctionDef)

    def enclosing_class(self) -> Optional[ast.ClassDef]:
        node = self.enclosing(ast.ClassDef)
        return node if isinstance(node, ast.ClassDef) else None

    def in_async_function(self) -> bool:
        """Is the current node inside an ``async def`` body?

        A synchronous helper nested inside an ``async def`` shields its own
        body (it may legally block when handed to an executor).
        """
        return isinstance(self.enclosing_function(), ast.AsyncFunctionDef)

    def enclosing_method(self) -> Tuple[Optional[ast.ClassDef],
                                        Optional[ast.AST]]:
        """The (class, method) pair the current node is lexically inside.

        The method is the outermost function whose direct parent in the
        stack is the class, so code in helpers nested inside a method still
        attributes to that method.
        """
        chain = self.stack
        for i, node in enumerate(chain):
            if isinstance(node, ast.ClassDef) and i + 1 < len(chain) \
                    and isinstance(chain[i + 1],
                                   (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node, chain[i + 1]
        return None, None

    # ----- reporting -----------------------------------------------------------------

    def report(self, node: ast.AST, code: str, message: str,
               severity: str = "error", hint: Optional[str] = None) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if not selected(code, self.config.select, self.config.ignore):
            return
        if self.pragmas.suppresses(line, code):
            return
        self.diagnostics.append(Diagnostic(
            path=str(self.path), line=line, col=col, code=code,
            message=message, severity=severity, hint=hint))


class Rule:
    """Base class for one rule family.

    Subclasses set ``family`` (the id prefix, e.g. ``"RPL1"``) and declare
    ``visit_<NodeType>`` callbacks; the engine discovers them by name and
    dispatches during its single walk.  ``begin_module``/``end_module``
    bracket each file; ``finish`` runs once per engine run for
    cross-module checks.
    """

    family = "RPL0"

    def begin_module(self, ctx: ModuleContext) -> None:  # pragma: no cover
        pass

    def end_module(self, ctx: ModuleContext) -> None:  # pragma: no cover
        pass

    def finish(self, engine: "LintEngine") -> None:  # pragma: no cover
        pass


class LintEngine:
    """Walk each file once, dispatching nodes to every registered rule."""

    def __init__(self, rules: Sequence[Rule], config: LintConfig) -> None:
        self.rules = list(rules)
        self.config = config
        self.contexts: List[ModuleContext] = []
        self.errors: List[Diagnostic] = []
        self._handlers: Dict[type, List[Callable]] = {}
        for rule in self.rules:
            for name in dir(rule):
                if not name.startswith("visit_"):
                    continue
                node_type = getattr(ast, name[len("visit_"):], None)
                if node_type is None:
                    raise ValueError(f"{type(rule).__name__}.{name} does not "
                                     f"name an ast node type")
                self._handlers.setdefault(node_type, []).append(
                    getattr(rule, name))

    # ----- file collection ------------------------------------------------------------

    @staticmethod
    def collect_files(paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(p for p in path.rglob("*.py")
                                    if "__pycache__" not in p.parts))
            elif path.suffix == ".py":
                files.append(path)
        seen = set()
        unique = []
        for path in files:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(path)
        return unique

    # ----- driving --------------------------------------------------------------------

    def run(self, paths: Sequence[Path]) -> List[Diagnostic]:
        for path in self.collect_files(paths):
            self._lint_file(path)
        for rule in self.rules:
            rule.finish(self)
        diagnostics = list(self.errors)
        for ctx in self.contexts:
            diagnostics.extend(ctx.diagnostics)
            diagnostics.extend(ctx.pragmas.policy_findings(str(ctx.path)))
        return sorted(
            (d for d in diagnostics
             if selected(d.code, self.config.select, self.config.ignore)),
            key=Diagnostic.sort_key)

    def _lint_file(self, path: Path) -> None:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            self.errors.append(Diagnostic(
                path=str(path), line=getattr(exc, "lineno", 1) or 1, col=1,
                code="RPL002", message=f"cannot parse file: {exc}"))
            return
        ctx = ModuleContext(path, source, tree, self.config)
        self.contexts.append(ctx)
        for rule in self.rules:
            rule.begin_module(ctx)
        self._walk(tree, ctx)
        for rule in self.rules:
            rule.end_module(ctx)

    def _walk(self, node: ast.AST, ctx: ModuleContext) -> None:
        for handler in self._handlers.get(type(node), ()):
            handler(node, ctx)
        last_fields = _LAST_FIELDS.get(type(node), ())
        ctx.stack.append(node)
        try:
            for name, value in ast.iter_fields(node):
                if name in last_fields:
                    continue
                self._walk_field(value, ctx)
            for name in last_fields:
                self._walk_field(getattr(node, name, None), ctx)
        finally:
            ctx.stack.pop()

    def _walk_field(self, value, ctx: ModuleContext) -> None:
        if isinstance(value, ast.AST):
            self._walk(value, ctx)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.AST):
                    self._walk(item, ctx)


def lint_paths(paths: Sequence[Path], select: Sequence[str] = (),
               ignore: Sequence[str] = (),
               wire_doc: Optional[Path] = None) -> List[Diagnostic]:
    """Run the full rule suite over ``paths``; returns sorted diagnostics."""
    from repro.tools.lint.rules import all_rules

    config = LintConfig(select=select, ignore=ignore, wire_doc=wire_doc)
    engine = LintEngine(all_rules(), config)
    return engine.run([Path(p) for p in paths])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.tools.lint src/ tests/``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="repo-native static analysis: determinism (RPL1), "
                    "exact-integer state (RPL2), async safety (RPL3), "
                    "wire-schema drift (RPL4), protocol contracts (RPL5)")
    parser.add_argument("paths", nargs="+", type=Path,
                        help="files or directories to lint")
    parser.add_argument("--select", default="",
                        help="comma-separated rule ids/families to enable "
                             "(default: all)")
    parser.add_argument("--ignore", default="",
                        help="comma-separated rule ids/families to disable")
    parser.add_argument("--fix-hints", action="store_true",
                        help="print a fix hint under each finding")
    parser.add_argument("--wire-doc", type=Path, default=None,
                        help="wire-schema document for RPL4 (default: "
                             "docs/wire-protocol.md found upward from each "
                             "checked file)")
    parser.add_argument("--statistics", action="store_true",
                        help="print a per-rule finding count summary")
    args = parser.parse_args(argv)

    select = [c for c in args.select.split(",") if c.strip()]
    ignore = [c for c in args.ignore.split(",") if c.strip()]
    missing = [str(p) for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    diagnostics = lint_paths(args.paths, select=select, ignore=ignore,
                             wire_doc=args.wire_doc)
    for diagnostic in diagnostics:
        print(diagnostic.format(show_hint=args.fix_hints))
    if args.statistics and diagnostics:
        counts: Dict[str, int] = {}
        for diagnostic in diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        for code in sorted(counts):
            print(f"{counts[code]:6d}  {code}")
    if diagnostics:
        print(f"found {len(diagnostics)} finding(s)", file=sys.stderr)
        return 1
    print("repro-lint: clean", file=sys.stderr)
    return 0
