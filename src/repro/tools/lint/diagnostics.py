"""Diagnostics and suppression pragmas for the repro lint suite.

A :class:`Diagnostic` is one finding: ``file:line:col: RULE-ID message``
plus a severity and an optional fix hint.  Findings are suppressed by an
explicit, *justified* pragma on the flagged line (or on a comment line
immediately above it)::

    state = time.time()  # repro-lint: ignore[RPL103] wall clock feeds a log tag only

The bracket takes a comma-separated list of rule ids; a bare family prefix
(``RPL1``) suppresses every rule of that family.  The free text after the
bracket is the justification and is **mandatory** — a pragma without a
reason is itself a finding (``RPL001``), so silencing a rule always leaves
a paper trail (see ``docs/static-analysis.md`` for the policy).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Diagnostic",
    "PragmaIndex",
    "Severity",
    "match_code",
    "selected",
]

#: pragma grammar: ``# repro-lint: ignore[RPL101,RPL2] <reason>``
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<codes>[A-Z0-9,\s]*)\]\s*(?P<reason>.*)$"
)


class Severity:
    """Diagnostic severities, ordered weakest to strongest."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    ORDER = (INFO, WARNING, ERROR)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, formatted as ``path:line:col: rule-id message``."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = Severity.ERROR
    hint: Optional[str] = None

    def format(self, show_hint: bool = False) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.severity}] {self.message}")
        if show_hint and self.hint:
            text += f"\n    fix-hint: {self.hint}"
        return text

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


def match_code(code: str, patterns: Iterable[str]) -> bool:
    """True when ``code`` matches any id or family prefix in ``patterns``.

    ``RPL104`` matches the exact id ``RPL104`` and the family ``RPL1`` (a
    strict prefix of the numeric tail), mirroring ``--select``/``--ignore``
    semantics.
    """
    for pattern in patterns:
        pattern = pattern.strip()
        if pattern and code.startswith(pattern):
            return True
    return False


def selected(code: str, select: Sequence[str], ignore: Sequence[str]) -> bool:
    """Apply ``--select`` (empty = everything) then ``--ignore``."""
    if select and not match_code(code, select):
        return False
    return not match_code(code, ignore)


@dataclass
class _Pragma:
    line: int
    codes: Tuple[str, ...]
    reason: str
    standalone: bool  # a comment-only line applies to the next code line


@dataclass
class PragmaIndex:
    """All ``repro-lint: ignore`` pragmas of one source file, by line."""

    pragmas: Dict[int, _Pragma] = field(default_factory=dict)
    #: line of the next code statement covered by a standalone pragma line
    covered: Dict[int, _Pragma] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str) -> "PragmaIndex":
        index = cls()
        lines = source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            found = _PRAGMA.search(text)
            if not found:
                continue
            codes = tuple(c.strip() for c in found.group("codes").split(",")
                          if c.strip())
            pragma = _Pragma(
                line=lineno,
                codes=codes,
                reason=found.group("reason").strip(),
                standalone=text.strip().startswith("#"),
            )
            index.pragmas[lineno] = pragma
            if pragma.standalone:
                # A comment-only pragma covers the next non-comment,
                # non-blank line.
                for ahead in range(lineno, len(lines)):
                    follower = lines[ahead].strip()
                    if follower and not follower.startswith("#"):
                        index.covered[ahead + 1] = pragma
                        break
        return index

    def suppresses(self, line: int, code: str) -> bool:
        """Is a diagnostic of ``code`` on ``line`` pragma-suppressed?"""
        for pragma in (self.pragmas.get(line), self.covered.get(line)):
            if pragma is not None and match_code(code, pragma.codes):
                return True
        return False

    def policy_findings(self, path: str) -> List[Diagnostic]:
        """Pragmas violating the policy: every suppression needs a reason."""
        findings = []
        for pragma in self.pragmas.values():
            if not pragma.reason or not pragma.codes:
                findings.append(Diagnostic(
                    path=path, line=pragma.line, col=1, code="RPL001",
                    message="suppression pragma must name at least one rule "
                            "id and give a justification: "
                            "`# repro-lint: ignore[RPLnnn] <reason>`",
                    hint="append the rule id(s) and a short reason "
                         "explaining why the invariant does not apply here",
                ))
        return findings
