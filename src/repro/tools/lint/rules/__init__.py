"""Rule registry for the repro lint suite.

A rule family is one module under ``repro.tools.lint.rules`` holding a
:class:`~repro.tools.lint.engine.Rule` subclass decorated with
:func:`register_rule`.  :func:`all_rules` imports every family module
(so registration is a side effect of import) and returns one fresh
instance per registered class — rules may keep per-run state, so the
engine must never share instances across runs.
"""

from __future__ import annotations

import importlib
from typing import List, Type

_REGISTRY: List[type] = []

#: family modules, imported lazily by :func:`all_rules`
_FAMILY_MODULES = (
    "determinism",
    "exactness",
    "async_safety",
    "wire_schema",
    "contracts",
)


def register_rule(cls: type) -> type:
    """Class decorator adding a Rule subclass to the registry (idempotent)."""
    if cls not in _REGISTRY:
        _REGISTRY.append(cls)
    return cls


def all_rules() -> List["object"]:
    """Fresh instances of every registered rule, in registration order."""
    for name in _FAMILY_MODULES:
        importlib.import_module(f"{__name__}.{name}")
    return [cls() for cls in _REGISTRY]


def registered_classes() -> List[Type]:
    """The registered rule classes themselves (for tests/introspection)."""
    for name in _FAMILY_MODULES:
        importlib.import_module(f"{__name__}.{name}")
    return list(_REGISTRY)
