"""RPL5 — protocol contracts: every registered protocol is structurally whole.

``@register_protocol`` is a runtime registry: nothing checks at import
time that the registered :class:`PublicParams` subclass can actually
build its encoder and aggregator, or that the aggregator it builds
implements the full serving surface (``absorb`` … ``from_snapshot``) the
server, the engine, the snapshot store, and the cluster router all call.
A protocol missing a hook registers fine and explodes on first use — in
whichever subsystem happens to touch the missing method first.

This family builds a cross-module class index during the walk and checks,
once all files are seen (``finish``):

RPL501  a required method/hook is missing from the class (including
        everything inherited inside the linted set; an *unindexed* base
        named ``ServerAggregator`` is credited with the base-class
        surface — absorb/absorb_batch/merge/snapshot/restore/
        from_snapshot — but never with the abstract hooks).
RPL502  a required method exists but its positional arity is incompatible
        with how the callers invoke it.
RPL503  a ``@register_protocol`` params class is missing part of the
        params contract (``make_encoder``/``make_aggregator``/
        ``_payload_dict``/``_from_payload``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.tools.lint.engine import LintEngine, ModuleContext, Rule
from repro.tools.lint.rules import register_rule

_BASE = "ServerAggregator"

#: methods the ServerAggregator base implements concretely; an unindexed
#: base of this name provides them (lets fixture trees omit wire.py)
_BASE_PROVIDED = frozenset({"absorb", "absorb_batch", "merge", "snapshot",
                            "restore", "from_snapshot"})

#: aggregator serving surface: name -> positional arity *at the call site*
#: (excluding the implicit self/cls; ``from_snapshot`` is static)
_AGGREGATOR_SURFACE = {
    "absorb": 1, "absorb_batch": 1, "merge": 1, "finalize": 0,
    "snapshot": 0, "restore": 1, "from_snapshot": 1,
}

#: state hooks the base's public surface delegates to (abstract on base)
_AGGREGATOR_HOOKS = {
    "_absorb_columns": 1, "_merge_impl": 1, "_state_dict": 0,
    "_load_state": 1,
}

#: public method -> the abstract hook its base implementation delegates to
_HOOK_FOR = {
    "absorb_batch": "_absorb_columns", "merge": "_merge_impl",
    "snapshot": "_state_dict", "restore": "_load_state",
}

#: params contract for @register_protocol classes (call-site arities)
_PARAMS_SURFACE = {
    "make_encoder": 0, "make_aggregator": 0, "_payload_dict": 0,
    "_from_payload": 1,
}


@dataclass
class _Method:
    node: ast.AST
    min_pos: int      # required positional args (no default), incl. self/cls
    max_pos: float    # total positional args, math.inf when *args
    is_abstract: bool
    is_static: bool


@dataclass
class _Class:
    name: str
    node: ast.ClassDef
    ctx: ModuleContext
    bases: Tuple[str, ...]
    methods: Dict[str, _Method] = field(default_factory=dict)
    registered: bool = False
    #: class name returned by this class's own ``make_aggregator``
    aggregator: Optional[str] = None


def _decorator_tails(node: ast.AST, ctx: ModuleContext) -> Set[str]:
    tails = set()
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        dotted = ctx.resolve_dotted(target)
        if dotted:
            tails.add(dotted.rsplit(".", 1)[-1])
    return tails


def _is_abstract_body(fn: ast.AST) -> bool:
    """Docstring-only, ``...``/``pass``-only, or ``raise NotImplementedError``."""
    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    if len(body) > 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Pass):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
            and stmt.value.value is Ellipsis:
        return True
    if isinstance(stmt, ast.Raise) and stmt.exc is not None:
        exc = stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
        return isinstance(exc, ast.Name) \
            and exc.id == "NotImplementedError"
    return False


def _method_info(fn: ast.AST, ctx: ModuleContext) -> _Method:
    tails = _decorator_tails(fn, ctx)
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    total = len(positional)
    min_pos = total - len(args.defaults)
    max_pos: float = float("inf") if args.vararg else total
    return _Method(
        node=fn,
        min_pos=min_pos,
        max_pos=max_pos,
        is_abstract="abstractmethod" in tails or _is_abstract_body(fn),
        is_static="staticmethod" in tails,
    )


def _returned_class(fn: ast.AST) -> Optional[str]:
    """Name of the class a ``return Cls(...)`` factory method constructs."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name):
            return node.value.func.id
    return None


@register_rule
class ContractRule(Rule):
    family = "RPL5"

    def __init__(self) -> None:
        self._classes: Dict[str, _Class] = {}

    # ----- indexing (per module) ------------------------------------------------------

    def begin_module(self, ctx: ModuleContext) -> None:
        if ctx.zone != "protocol":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                dotted.rsplit(".", 1)[-1]
                for dotted in (ctx.dotted(base) for base in node.bases)
                if dotted)
            info = _Class(
                name=node.name, node=node, ctx=ctx, bases=bases,
                registered="register_protocol" in _decorator_tails(node, ctx))
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = _method_info(item, ctx)
                    if item.name == "make_aggregator":
                        info.aggregator = _returned_class(item)
            self._classes[node.name] = info

    # ----- resolution helpers ---------------------------------------------------------

    def _lookup(self, cls: _Class, method: str) -> Tuple[Optional[_Method],
                                                         Optional[str]]:
        """Resolve ``method`` along the base chain.

        Returns ``(definition, provider)`` — the nearest *non-abstract*
        definition in the indexed chain and the class it lives on.  When
        the chain escapes through an unindexed ``ServerAggregator`` base
        that provides the name concretely, returns ``(None, _BASE)``.
        """
        seen: Set[str] = set()
        queue: List[str] = [cls.name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self._classes.get(name)
            if info is None:
                if name == _BASE and method in _BASE_PROVIDED:
                    return None, _BASE
                continue
            found = info.methods.get(method)
            if found is not None and not found.is_abstract:
                return found, name
            if found is None or found.is_abstract:
                queue.extend(info.bases)
        return None, None

    def _check_surface(self, cls: _Class, surface: Dict[str, int],
                       missing_code: str, what: str) -> None:
        for method, arity in surface.items():
            found, provider = self._lookup(cls, method)
            if found is None and provider == _BASE:
                continue
            if found is None:
                cls.ctx.report(
                    cls.node, missing_code,
                    f"{what} `{cls.name}` does not implement `{method}` "
                    f"anywhere in its class chain; every caller of the "
                    f"registered protocol surface will crash on it",
                    hint=f"implement `{method}` (or inherit a concrete "
                         f"implementation) — see the ServerAggregator/"
                         f"PublicParams contract in protocol/wire.py")
                continue
            # instance/class methods receive an implicit first argument
            expected = arity if found.is_static else arity + 1
            if not (found.min_pos <= expected <= found.max_pos):
                owner = provider if provider == cls.name else \
                    f"{cls.name} (inherited from {provider})"
                anchor = found.node if provider == cls.name else cls.node
                cls.ctx.report(
                    anchor, "RPL502",
                    f"`{owner}.{method}` takes "
                    f"{found.min_pos}..{found.max_pos:g} positional "
                    f"argument(s) but the protocol surface calls it with "
                    f"{expected}",
                    hint="match the base-class signature; extra parameters "
                         "must carry defaults")

    def _check_hooks(self, cls: _Class) -> None:
        """The base implementations of the public surface delegate to
        abstract state hooks; each hook is required exactly when the class
        still *uses* the base implementation of its public counterpart."""
        for public, hook in _HOOK_FOR.items():
            _, provider = self._lookup(cls, public)
            if provider != _BASE:
                continue  # public method overridden: hook not reached
            found, hook_provider = self._lookup(cls, hook)
            if found is None and hook_provider != _BASE:
                cls.ctx.report(
                    cls.node, "RPL501",
                    f"registered aggregator `{cls.name}` inherits the base "
                    f"`{public}` but never implements its delegate hook "
                    f"`{hook}`; the first `{public}` call will raise",
                    hint=f"implement `{hook}` (arity "
                         f"{_AGGREGATOR_HOOKS[hook]}) or override "
                         f"`{public}` wholesale")

    # ----- the cross-module pass ------------------------------------------------------

    def finish(self, engine: LintEngine) -> None:
        aggregator_roots: Dict[str, _Class] = {}
        for cls in self._classes.values():
            if not cls.registered:
                continue
            self._check_surface(cls, _PARAMS_SURFACE, "RPL503",
                                "registered params class")
            maker, _ = self._lookup(cls, "make_aggregator")
            if maker is None:
                continue  # already reported as RPL503
            target = _returned_class(maker.node)
            if target is not None and target in self._classes:
                aggregator_roots.setdefault(target, self._classes[target])
        for cls in aggregator_roots.values():
            self._check_surface(cls, _AGGREGATOR_SURFACE, "RPL501",
                                "registered aggregator")
            self._check_hooks(cls)
