"""RPL4 — wire-schema drift: code constants must match the spec document.

``docs/wire-protocol.md`` §7/§8/§9 is the *normative* wire contract: the
binary header layout, the magic/version/kind/flag values, the struct
field widths, the frame-size limit, and the shared-memory ring/control
segment layouts.  Four modules hard-code pieces of that contract —
``repro/protocol/binary.py`` (header + payload structs),
``repro/server/framing.py`` (length prefix + frame limit),
``repro/transport/shm.py`` (ring/ctl segment headers — a *cross-process*
layout: both endpoints map the same bytes),
``repro/server/snapshot.py`` (the §6.2 checksummed snapshot container),
``repro/cluster/journal.py`` (the §6.3 CRC record framing), and
``repro/cluster/router.py`` (anything it chooses to restate).  A PR that
edits one side but not the other ships a silent protocol fork: old
snapshots stop restoring, routers mis-split frames, ring peers read
garbage counters, and nothing fails until two builds talk to each other.

This rule machine-reads the spec (the §8.1/§9.1 fenced layout blocks plus
the §7 prose) into expected constants and ``struct`` format strings, then
diffs them against the module's actual assignments.

Rules
-----
RPL400  the schema document is missing or no longer machine-readable
        (a required layout line disappeared or changed shape).
RPL401  a constant/struct format in code disagrees with the document.
RPL402  a constant/struct the document requires is absent from the module.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.tools.lint.engine import ModuleContext, Rule
from repro.tools.lint.rules import register_rule

#: spec field width -> struct format code (little-endian payload fields)
_TYPE_CODES = {
    "u8": "B", "i8": "b", "u16": "H", "i16": "h",
    "u32": "I", "i32": "i", "u64": "Q", "i64": "q",
}

#: big-endian length-prefix width -> struct format
_PREFIX_CODES = {1: "!B", 2: "!H", 4: "!I", 8: "!Q"}

_FIELD = re.compile(r"\(([ui](?:8|16|32|64))\b")


@dataclass
class WireSchema:
    """Machine-readable form of the spec: constants and struct formats."""

    constants: Dict[str, int] = field(default_factory=dict)
    #: module file -> {assignment name: expected struct format string}
    structs: Dict[str, Dict[str, str]] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)


def _fields_to_format(line: str) -> Optional[str]:
    codes = [_TYPE_CODES[m] for m in _FIELD.findall(line)]
    return "<" + "".join(codes) if codes else None


def parse_wire_doc(text: str) -> WireSchema:
    """Extract the schema from ``docs/wire-protocol.md``.

    Anchors on the spec's own layout grammar: the ``header := ...`` block
    of §8.1, the fixed-field lines of the kind-1/kind-2 payloads, and the
    §7 prose sentences naming the length prefix and the frame limit.
    Every anchor that fails to parse is recorded in ``problems`` (RPL400)
    instead of silently weakening the check.
    """
    schema = WireSchema()
    consts = schema.constants
    binary: Dict[str, str] = {}
    framing: Dict[str, str] = {}
    shm: Dict[str, str] = {}
    snap: Dict[str, str] = {}
    journal: Dict[str, str] = {}

    def grab(name: str, pattern: str, base: int = 0) -> None:
        found = re.search(pattern, text, flags=re.MULTILINE)
        if found:
            consts[name] = int(found.group(1), base)
        else:
            schema.problems.append(
                f"cannot locate `{name}` (pattern {pattern!r})")

    grab("BINARY_MAGIC", r"^magic\s+=\s+(0x[0-9A-Fa-f]+|\d+)", 0)
    grab("BINARY_VERSION", r"^version\s+=\s+(\d+)")
    grab("KIND_REPORTS", r"^kind\s+=\s+(\d+)\s+\(reports\)")
    grab("KIND_STATE", r"^kind\s+=\s+\d+\s+\(reports\)\s*\|\s*(\d+)\s+\(state\)")
    grab("FLAG_ROUTED", r"^flags\s+=\s+bit\s+\d+\s+\((0x[0-9A-Fa-f]+|\d+)", 0)
    grab("FLAG_SEQUENCED",
         r"^\s*bit\s+\d+\s+\((0x[0-9A-Fa-f]+|\d+)[^)]*\):\s+FLAG_SEQUENCED", 0)

    def grab_format(label: str, pattern: str, into: Dict[str, str],
                    name: str) -> None:
        found = re.search(pattern, text, flags=re.MULTILINE)
        fmt = _fields_to_format(found.group(0)) if found else None
        if fmt:
            into[name] = fmt
        else:
            schema.problems.append(f"cannot parse the {label} layout line")

    grab_format("header", r"^header\s+:=.*$", binary, "_HEADER")
    grab_format("reports fixed-field",
                r"^epoch\s+\(i\d+\).*num_columns\s+\(u\d+\).*$",
                binary, "_REPORTS_FIXED")
    grab_format("route field", r"^route\s+\(i\d+\b.*$", binary, "_ROUTE_FIELD")
    grab_format("seq field", r"^seq\s+\(u\d+\b.*$", binary, "_SEQ_FIELD")
    grab_format("state fixed-field",
                r"^skeleton_len\s+\(u\d+\).*num_columns\s+\(u\d+\).*$",
                binary, "_STATE_FIXED")

    # §6.2/§6.3: the snapshot container and the cluster journal framing
    grab("SNAPSHOT_MAGIC", r"^snapshot_magic\s+=\s+(0x[0-9A-Fa-f]+|\d+)", 0)
    grab("_MAX_RECORD_BYTES",
         r"^max_record_bytes\s+=\s+(0x[0-9A-Fa-f]+|\d+)", 0)
    grab_format("snapshot container", r"^container\s+:=.*$", snap,
                "_CONTAINER_HEADER")
    grab_format("journal record", r"^record\s+:=.*$", journal,
                "_RECORD_HEADER")
    grab_format("journal entry", r"^\s*entry\s+:=.*$", journal,
                "_ENTRY_FIXED")

    # §9: the shared-memory ring segment layouts
    grab("RING_MAGIC", r"^ring_magic\s+=\s+(0x[0-9A-Fa-f]+|\d+)", 0)
    grab("CTL_MAGIC", r"^ctl_magic\s+=\s+(0x[0-9A-Fa-f]+|\d+)", 0)
    grab("RING_VERSION", r"^ring_version\s+=\s+(\d+)")
    grab_format("ring header", r"^ring_header\s+:=.*$", shm, "_RING_HEADER")
    grab_format("ctl header", r"^ctl_header\s+:=.*$", shm, "_CTL_HEADER")
    grab_format("slot", r"^slot\s+:=.*$", shm, "_SLOT")

    prefix = re.search(r"(\d+)-byte big-endian payload length", text)
    if prefix and int(prefix.group(1)) in _PREFIX_CODES:
        framing["_HEADER"] = _PREFIX_CODES[int(prefix.group(1))]
    else:
        schema.problems.append("cannot locate the big-endian length-prefix "
                               "sentence of §7")
    limit = re.search(r"larger than 2\^(\d+) bytes", text)
    if limit:
        consts["MAX_FRAME_BYTES"] = 1 << int(limit.group(1))
    else:
        schema.problems.append("cannot locate the frame-size-limit "
                               "sentence of §7")

    schema.structs["protocol/binary.py"] = binary
    schema.structs["server/framing.py"] = framing
    schema.structs["transport/shm.py"] = shm
    schema.structs["server/snapshot.py"] = snap
    schema.structs["cluster/journal.py"] = journal
    return schema


#: per-module required names; files listed with empty sets get drift-only
#: checks (anything they restate must agree, nothing is mandatory)
_REQUIRED_CONSTANTS = {
    "protocol/binary.py": ("BINARY_MAGIC", "BINARY_VERSION", "KIND_REPORTS",
                           "KIND_STATE", "FLAG_ROUTED", "FLAG_SEQUENCED"),
    "server/framing.py": ("MAX_FRAME_BYTES",),
    "cluster/router.py": (),
    "transport/shm.py": ("RING_MAGIC", "CTL_MAGIC", "RING_VERSION"),
    "server/snapshot.py": ("SNAPSHOT_MAGIC",),
    "cluster/journal.py": ("_MAX_RECORD_BYTES",),
}
_REQUIRED_STRUCTS = {
    "protocol/binary.py": ("_HEADER", "_REPORTS_FIXED", "_ROUTE_FIELD",
                           "_SEQ_FIELD", "_STATE_FIXED"),
    "server/framing.py": ("_HEADER",),
    "cluster/router.py": (),
    "transport/shm.py": ("_RING_HEADER", "_CTL_HEADER", "_SLOT"),
    "server/snapshot.py": ("_CONTAINER_HEADER",),
    "cluster/journal.py": ("_RECORD_HEADER", "_ENTRY_FIXED"),
}


def _fold_int(node: ast.AST) -> Optional[int]:
    """Constant-fold the integer expressions wire constants are written in
    (``0xB1``, ``1 << 30``, ``-1``); anything else folds to ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp):
        operand = _fold_int(node.operand)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.Invert):
            return ~operand
        return None
    if isinstance(node, ast.BinOp):
        left, right = _fold_int(node.left), _fold_int(node.right)
        if left is None or right is None:
            return None
        ops = {ast.LShift: lambda a, b: a << b,
               ast.RShift: lambda a, b: a >> b,
               ast.Add: lambda a, b: a + b,
               ast.Sub: lambda a, b: a - b,
               ast.Mult: lambda a, b: a * b,
               ast.BitOr: lambda a, b: a | b,
               ast.BitAnd: lambda a, b: a & b,
               ast.BitXor: lambda a, b: a ^ b,
               ast.Pow: lambda a, b: a ** b}
        handler = ops.get(type(node.op))
        return handler(left, right) if handler else None
    return None


@register_rule
class WireSchemaRule(Rule):
    family = "RPL4"

    def __init__(self) -> None:
        self._schemas: Dict[Path, Optional[WireSchema]] = {}

    # ----- schema loading -------------------------------------------------------------

    def _doc_path(self, ctx: ModuleContext) -> Optional[Path]:
        if ctx.config.wire_doc is not None:
            return ctx.config.wire_doc
        for parent in ctx.path.resolve().parents:
            candidate = parent / "docs" / "wire-protocol.md"
            if candidate.is_file():
                return candidate
        return None

    def _schema_for(self, doc: Path) -> Optional[WireSchema]:
        key = doc.resolve()
        if key not in self._schemas:
            try:
                self._schemas[key] = parse_wire_doc(
                    doc.read_text(encoding="utf-8"))
            except OSError:
                self._schemas[key] = None
        return self._schemas[key]

    # ----- module scan ----------------------------------------------------------------

    @staticmethod
    def _module_assignments(ctx: ModuleContext) -> Tuple[
            Dict[str, Tuple[int, ast.AST]], Dict[str, Tuple[str, ast.AST]]]:
        """Top-level ``NAME = <int expr>`` and ``NAME = struct.Struct("...")``."""
        ints: Dict[str, Tuple[int, ast.AST]] = {}
        structs: Dict[str, Tuple[str, ast.AST]] = {}
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1 \
                    or not isinstance(node.targets[0], ast.Name):
                continue
            name = node.targets[0].id
            folded = _fold_int(node.value)
            if folded is not None:
                ints[name] = (folded, node)
                continue
            value = node.value
            if isinstance(value, ast.Call) \
                    and ctx.resolve_dotted(value.func) == "struct.Struct" \
                    and value.args \
                    and isinstance(value.args[0], ast.Constant) \
                    and isinstance(value.args[0].value, str):
                structs[name] = (value.args[0].value, node)
        return ints, structs

    def end_module(self, ctx: ModuleContext) -> None:
        if ctx.module_file not in _REQUIRED_CONSTANTS:
            return
        doc = self._doc_path(ctx)
        if doc is None or not doc.is_file():
            ctx.report(
                ctx.tree, "RPL400",
                "wire-schema document docs/wire-protocol.md not found; the "
                "binary constants of this module cannot be cross-checked",
                hint="restore the document or pass --wire-doc")
            return
        schema = self._schema_for(doc)
        if schema is None:
            ctx.report(ctx.tree, "RPL400",
                       f"wire-schema document {doc} is unreadable")
            return
        for problem in schema.problems:
            ctx.report(
                ctx.tree, "RPL400",
                f"wire-schema document {doc.name} is no longer "
                f"machine-readable: {problem}",
                hint="keep the §7/§8.1 layout lines in the documented "
                     "grammar — this rule parses them")

        ints, structs = self._module_assignments(ctx)
        self._check(ctx, schema.constants, ints,
                    _REQUIRED_CONSTANTS[ctx.module_file], kind="constant")
        expected_structs = schema.structs.get(ctx.module_file, {})
        # drift-only modules are still held to the binary payload formats
        if not expected_structs:
            expected_structs = schema.structs.get("protocol/binary.py", {})
        self._check(ctx, expected_structs, structs,
                    _REQUIRED_STRUCTS[ctx.module_file], kind="struct format")

    def _check(self, ctx: ModuleContext,
               expected: Dict[str, Union[int, str]],
               actual: Dict[str, Tuple[Union[int, str], ast.AST]],
               required: Tuple[str, ...], kind: str) -> None:
        for name, want in expected.items():
            if name in actual:
                got, node = actual[name]
                if got != want:
                    shown = (hex(want) if kind == "constant"
                             and isinstance(want, int) and want > 9
                             else repr(want))
                    ctx.report(
                        node, "RPL401",
                        f"{kind} `{name}` = {got!r} disagrees with "
                        f"docs/wire-protocol.md, which specifies {shown}",
                        hint="change whichever side is wrong — and treat a "
                             "deliberate layout change as a version bump "
                             "(spec §8.1)")
            elif name in required:
                ctx.report(
                    ctx.tree, "RPL402",
                    f"required {kind} `{name}` (= {want!r} per "
                    f"docs/wire-protocol.md) is not defined in this module",
                    hint="define it at module top level so the spec "
                         "cross-check can see it")
