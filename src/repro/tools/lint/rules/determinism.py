"""RPL1 — determinism: seeded randomness must flow in as a parameter.

The reproduction's headline guarantee — served answers equal the offline
engine bit for bit, for any worker/shard count — holds only because every
random draw in the protocol stack comes from an *explicit* generator
argument (`rng`), seeded by the caller.  One call into process-global
RNG state, fresh OS entropy, or the wall clock anywhere in the encode /
aggregate path silently voids the claim, and no fixed-seed test can be
relied on to notice (the test harness seeds the global state too).

Scope: ``repro/protocol``, ``repro/engine``, ``repro/randomizers`` — the
zones whose outputs must be a pure function of ``(params, values, rng)``.

Rules
-----
RPL101  fresh-entropy generator: ``np.random.default_rng()`` /
        ``as_generator(None)`` with no seed inside a deterministic zone.
RPL102  process-global RNG: any legacy ``np.random.<draw>`` or stdlib
        ``random.<draw>`` call — global state is shared across callers
        and reseeded at a distance.
RPL103  wall clock as data: ``time.time`` / ``time.time_ns`` /
        ``datetime.now`` / ``datetime.utcnow`` (``perf_counter`` and
        ``monotonic`` stay legal: throughput metrics are reported, never
        folded into protocol state).
RPL104  set-iteration-order hazard: iterating a set (``for x in {...}``,
        ``list(set(...))``, comprehensions over sets) — iteration order
        depends on insertion history and hash randomization; wrap in
        ``sorted(...)`` to fix an order.
"""

from __future__ import annotations

import ast

from repro.tools.lint.engine import ModuleContext, Rule
from repro.tools.lint.rules import register_rule

_ZONES = ("protocol", "engine", "randomizers")

#: legacy numpy global-state draws (numpy.random.<name>)
_NP_GLOBAL = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "bytes",
    "standard_normal", "uniform", "normal", "binomial", "poisson",
    "geometric", "exponential", "laplace", "beta", "gamma", "get_state",
    "set_state",
})

#: stdlib ``random`` module draws
_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "seed", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "randbytes", "triangular", "vonmisesvariate",
})

#: wall-clock reads whose value would become protocol state
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
})

#: callables whose argument's set-ness makes iteration order observable
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter",
                                    "reversed"})


def _is_set_expr(node: ast.AST) -> bool:
    """A literal set, a set comprehension, or a ``set(...)``/``frozenset(...)``
    constructor call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register_rule
class DeterminismRule(Rule):
    family = "RPL1"

    def _active(self, ctx: ModuleContext) -> bool:
        return ctx.zone in _ZONES

    # ----- RPL101/RPL102/RPL103: calls -----------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not self._active(ctx):
            return
        resolved = ctx.resolve_dotted(node.func)
        if resolved is None:
            self._check_order_sensitive_call(node, ctx)
            return
        tail = resolved.rsplit(".", 1)[-1]

        if resolved.startswith("numpy.random.") and tail in _NP_GLOBAL:
            ctx.report(
                node, "RPL102",
                f"call into process-global RNG state `{resolved}` in a "
                f"deterministic zone; draws must come from an explicit "
                f"generator parameter",
                hint="accept `rng` (see repro.utils.rng.RandomState), coerce "
                     "with as_generator(rng), and draw from the generator")
            return
        if (resolved.startswith("random.") and tail in _STDLIB_RANDOM
                and ctx.aliases.get(resolved.split(".", 1)[0]) == "random"):
            ctx.report(
                node, "RPL102",
                f"stdlib global RNG call `{resolved}` in a deterministic "
                f"zone; draws must come from an explicit numpy generator "
                f"parameter",
                hint="thread a seeded np.random.Generator through instead of "
                     "the process-global `random` module")
            return

        if resolved in ("numpy.random.default_rng",
                        "repro.utils.rng.as_generator") or tail in (
                            "default_rng", "as_generator"):
            fully = resolved in ("numpy.random.default_rng",
                                 "repro.utils.rng.as_generator")
            known = fully or tail in ("default_rng", "as_generator")
            if known and self._unseeded(node):
                ctx.report(
                    node, "RPL101",
                    f"`{resolved}` without a seed draws fresh OS entropy in "
                    f"a deterministic zone; the generator must flow in as a "
                    f"parameter",
                    hint="take `rng: RandomState` as an argument and pass it "
                         "through as_generator(rng) at the boundary")
            return

        if resolved in _WALL_CLOCK:
            ctx.report(
                node, "RPL103",
                f"wall-clock read `{resolved}` in a deterministic zone "
                f"makes derived state time-dependent",
                hint="pass timestamps/epochs in from the caller; use "
                     "time.perf_counter only for reported timings")
            return

        self._check_order_sensitive_call(node, ctx)

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if node.keywords:
            return False
        if not node.args:
            return True
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    # ----- RPL104: set iteration ------------------------------------------------------

    def _check_order_sensitive_call(self, node: ast.Call,
                                    ctx: ModuleContext) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_CALLS
                and node.args and _is_set_expr(node.args[0])):
            self._report_set_order(node, ctx)

    def visit_For(self, node: ast.For, ctx: ModuleContext) -> None:
        if self._active(ctx) and _is_set_expr(node.iter):
            self._report_set_order(node, ctx)

    def _check_comprehension(self, node, ctx: ModuleContext) -> None:
        if not self._active(ctx):
            return
        for generator in node.generators:
            if _is_set_expr(generator.iter):
                self._report_set_order(generator.iter, ctx)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension

    @staticmethod
    def _report_set_order(node: ast.AST, ctx: ModuleContext) -> None:
        ctx.report(
            node, "RPL104",
            "iteration over a set in a deterministic zone: order depends on "
            "insertion history (and hash randomization for str keys)",
            hint="iterate `sorted(...)` of the set so the order is a pure "
                 "function of the contents")
