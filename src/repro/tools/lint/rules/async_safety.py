"""RPL3 — async safety: the ingest loop must never block or race itself.

The server and cluster tiers are single-threaded asyncio: throughput
comes from the event loop never stalling, and correctness ("queries never
observe a half-absorbed batch") comes from state mutations happening
atomically *between* awaits.  Both properties are invisible to unit tests
— a blocking disk write inside a handler still passes every functional
assertion, it just freezes every other connection while it runs.

Scope: ``repro/server``, ``repro/cluster``, ``repro/transport``, and
``repro/cli.py`` — only code lexically inside ``async def`` (synchronous
helpers may block; they are expected to run in executors).  The transport
zone matters most for the shm ring: its async wait paths *spin* on shared
counters, and one ``time.sleep`` there freezes every link on the loop.

Rules
-----
RPL301  blocking call on the event loop: ``time.sleep``, synchronous file
        IO (``open``, ``Path.read_text``/``write_bytes`` …),
        ``subprocess.*``, ``Future.result()``, and the repo's own known
        blocking surfaces (``SnapshotStore.save`` via ``self.store.save``,
        ``read_snapshot``/``write_snapshot``, ``ClusterSupervisor``
        methods, ``spawn_server_process``).  Fix: hand the call to
        ``loop.run_in_executor`` / ``asyncio.to_thread``.
RPL302  check-then-act across an await: an instance attribute is read,
        an ``await`` yields the loop, and the attribute is then written —
        without an ``async with <lock>`` guarding both.  Another task can
        interleave at the await and invalidate the read (the classic
        lost-update/TOCTOU shape of the ingest loop).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.tools.lint.engine import ModuleContext, Rule
from repro.tools.lint.rules import register_rule

#: fully-qualified calls that block the event loop
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.popen", "os.waitpid", "os.wait",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "urllib.request.urlopen",
    "shutil.copy", "shutil.copytree", "shutil.rmtree",
})

#: method names that are blocking regardless of receiver
_BLOCKING_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
})

#: repo-native blocking entry points (module-level functions)
_REPO_BLOCKING_FUNCS = frozenset({
    "read_snapshot", "write_snapshot", "spawn_server_process",
})

#: repo-native blocking methods, keyed by a substring of the receiver chain
_REPO_BLOCKING_METHODS = (
    # SnapshotStore: sync disk IO behind `<...>.store.<method>(...)`
    ("store", frozenset({"save", "load_latest"})),
    # ClusterSupervisor: spawns/waits on subprocesses synchronously
    ("supervisor", frozenset({"start", "stop", "restart", "poll",
                              "terminate", "kill", "wait"})),
)


def _receiver_chain(node: ast.Attribute) -> str:
    parts: List[str] = []
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
    return ".".join(reversed(parts))


def _self_target(node: ast.AST) -> Optional[str]:
    """Dotted path of a ``self.<...>`` attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return "self." + ".".join(reversed(parts))
    return None


def _mentions_lock(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


@register_rule
class AsyncSafetyRule(Rule):
    family = "RPL3"

    def _active(self, ctx: ModuleContext) -> bool:
        return (ctx.zone in ("server", "cluster", "transport")
                or ctx.module_file == "cli.py")

    # ----- RPL301: blocking calls -----------------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not self._active(ctx) or not ctx.in_async_function():
            return
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "open":
                ctx.report(
                    node, "RPL301",
                    "synchronous open() inside `async def` blocks the "
                    "event loop for the duration of the IO",
                    hint="await loop.run_in_executor(None, ...) or "
                         "asyncio.to_thread(...) around the file work")
                return
            if name == "input" or name in _REPO_BLOCKING_FUNCS:
                ctx.report(
                    node, "RPL301",
                    f"blocking call `{name}(...)` inside `async def` "
                    f"stalls every other connection on this loop",
                    hint="offload to an executor: await "
                         "loop.run_in_executor(None, ...)")
                return
        resolved = ctx.resolve_dotted(node.func)
        if resolved in _BLOCKING_CALLS:
            ctx.report(
                node, "RPL301",
                f"blocking call `{resolved}` inside `async def` stalls the "
                f"event loop",
                hint="use the asyncio equivalent (asyncio.sleep, "
                     "create_subprocess_exec) or an executor")
            return
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = _receiver_chain(node.func)
            if attr == "result" and not node.args and not node.keywords:
                ctx.report(
                    node, "RPL301",
                    "Future.result() inside `async def` deadlocks or blocks "
                    "the loop; futures must be awaited",
                    hint="await the future (or wrap with asyncio.wrap_future)")
                return
            if attr in _BLOCKING_METHODS:
                ctx.report(
                    node, "RPL301",
                    f"synchronous file IO `.{attr}(...)` inside `async def` "
                    f"blocks the event loop",
                    hint="offload to an executor: await "
                         "loop.run_in_executor(None, ...)")
                return
            for marker, methods in _REPO_BLOCKING_METHODS:
                if attr in methods and marker in receiver.lower().split("."):
                    ctx.report(
                        node, "RPL301",
                        f"`{receiver}.{attr}(...)` does blocking work "
                        f"(disk/subprocess) inside `async def`",
                        hint="offload to an executor: await "
                             "loop.run_in_executor(None, ...)")
                    return

    # ----- RPL302: check-then-act across an await -------------------------------------

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: ModuleContext) -> None:
        if not self._active(ctx):
            return
        events: List[Tuple[str, Optional[str], ast.AST]] = []
        self._collect(node.body, events, guarded=False)
        self._scan(events, ctx)

    def _collect(self, body, events, guarded: bool) -> None:
        """Flatten statements into (kind, key, node) events in source order.

        ``kind`` is ``read``/``write``/``await``; events inside an
        ``async with <lock>`` are dropped (the lock serializes them), and
        nested function bodies are skipped (they run on their own schedule).
        """
        for stmt in body:
            self._collect_node(stmt, events, guarded)

    def _collect_node(self, node: ast.AST, events, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.AsyncWith):
            inner_guarded = guarded or any(
                _mentions_lock(item.context_expr) for item in node.items)
            for item in node.items:
                self._collect_node(item.context_expr, events, guarded)
            self._collect(node.body, events, inner_guarded)
            return
        if isinstance(node, ast.Await):
            self._collect_node(node.value, events, guarded)
            events.append(("await", None, node))
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            # evaluation order: value first, then the target stores
            value = getattr(node, "value", None)
            if isinstance(node, ast.AugAssign):
                # `self.x += <no await>` is atomic on the event loop — the
                # read only races when the RHS itself yields to the loop
                key = _self_target(node.target)
                rhs_awaits = any(isinstance(sub, ast.Await)
                                 for sub in ast.walk(node.value))
                if key is not None and not guarded and rhs_awaits:
                    events.append(("read", key, node.target))
            if value is not None:
                self._collect_node(value, events, guarded)
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                self._collect_target(target, events, guarded)
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            key = _self_target(node)
            if key is not None and not guarded:
                events.append(("read", key, node))
            # fall through: visit the value chain for awaits nested deeper
        for child in ast.iter_child_nodes(node):
            self._collect_node(child, events, guarded)

    def _collect_target(self, target: ast.AST, events, guarded: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._collect_target(element, events, guarded)
            return
        if isinstance(target, ast.Attribute):
            key = _self_target(target)
            if key is not None and not guarded:
                events.append(("write", key, target))
            return
        if isinstance(target, ast.Subscript):
            self._collect_node(target.value, events, guarded)

    def _scan(self, events, ctx: ModuleContext) -> None:
        reported = set()
        for i, (kind, key, node) in enumerate(events):
            if kind != "write" or key in reported:
                continue
            awaits = [j for j, e in enumerate(events[:i]) if e[0] == "await"]
            if not awaits:
                continue
            for j, (other_kind, other_key, _other) in enumerate(events[:i]):
                if other_kind == "read" and other_key == key \
                        and any(j < a < i for a in awaits):
                    reported.add(key)
                    ctx.report(
                        node, "RPL302",
                        f"`{key}` is read, the coroutine awaits (another "
                        f"task may run), and `{key}` is then written — a "
                        f"check-then-act race on shared server state",
                        hint="hold an asyncio.Lock across the read+write "
                             "(`async with self._lock:`), or commit the "
                             "write before the first await")
                    break
