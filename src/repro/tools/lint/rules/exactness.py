"""RPL2 — exactness: no floating point in the aggregator bit-identity zone.

Sharded serving answers bit-identically to one server *only because*
``ServerAggregator`` state is exact integers: integer addition is
associative, so any shard assignment, merge order, JSON/binary snapshot
round trip, or journal replay reproduces the single-server state exactly
(``docs/wire-protocol.md`` §4).  One float creeping into ``absorb``,
``merge``, or the snapshot path turns "bit-identical" into
"approximately equal" — and K-shard tests pass on small inputs where the
rounding happens to cancel.

Scope: methods named ``absorb*``, ``merge``/``_merge_impl``,
``snapshot``/``_state_dict``, ``restore``/``_load_state`` of (direct or
transitive) ``ServerAggregator`` subclasses under ``repro/protocol``.
``finalize`` is deliberately *outside* the zone — debiasing is float math
by design; the invariant is that floats appear only after the last merge.

Rules
-----
RPL201  float literal inside a hot-zone method.
RPL202  true division ``/`` (use ``//`` — or move the math to finalize).
RPL203  float dtype: ``np.float32``/``float64``/``floating`` references,
        ``dtype=float``, ``astype(float)``.
RPL204  ``float(...)`` cast inside a hot-zone method.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.tools.lint.engine import ModuleContext, Rule
from repro.tools.lint.rules import register_rule

#: the aggregator base class anchoring the hot zone
_BASE = "ServerAggregator"

#: method names forming the bit-identity hot zone
_HOT_EXACT = frozenset({"merge", "_merge_impl", "snapshot", "restore",
                        "_state_dict", "_load_state"})

_NUMPY_FLOAT_ATTRS = frozenset({
    "float16", "float32", "float64", "float128", "float_", "single",
    "double", "half", "longdouble", "floating",
})


def _is_float_dtype_expr(node: ast.AST, ctx: ModuleContext) -> bool:
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    if isinstance(node, ast.Attribute):
        resolved = ctx.resolve_dotted(node) or ""
        return (resolved.startswith("numpy.")
                and resolved.rsplit(".", 1)[-1] in _NUMPY_FLOAT_ATTRS)
    return False


@register_rule
class ExactnessRule(Rule):
    family = "RPL2"

    def begin_module(self, ctx: ModuleContext) -> None:
        """Map the module's aggregator classes (transitively via local bases)."""
        if ctx.zone != "protocol":
            return
        bases: Dict[str, Set[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    dotted = ctx.dotted(base)
                    if dotted:
                        names.add(dotted.rsplit(".", 1)[-1])
                bases[node.name] = names
        aggregators: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, parents in bases.items():
                if name in aggregators:
                    continue
                if _BASE in parents or parents & aggregators:
                    aggregators.add(name)
                    changed = True
        ctx.facts[self.family] = aggregators

    # ----- zone test ------------------------------------------------------------------

    def _hot_method(self, ctx: ModuleContext) -> Optional[str]:
        aggregators = ctx.facts.get(self.family)
        if not aggregators:
            return None
        cls, method = ctx.enclosing_method()
        if cls is None or cls.name not in aggregators or method is None:
            return None
        name = method.name
        if name.startswith("absorb") or name == "_absorb_columns" \
                or name in _HOT_EXACT:
            return f"{cls.name}.{name}"
        return None

    # ----- rules ----------------------------------------------------------------------

    def visit_Constant(self, node: ast.Constant, ctx: ModuleContext) -> None:
        if not isinstance(node.value, float):
            return
        where = self._hot_method(ctx)
        if where:
            ctx.report(
                node, "RPL201",
                f"float literal {node.value!r} inside {where}: aggregator "
                f"state must stay exact integers until finalize()",
                hint="keep the value integral (scaled counts) or move the "
                     "float math into finalize()")

    def _check_div(self, node: ast.AST, op: ast.AST,
                   ctx: ModuleContext) -> None:
        if not isinstance(op, ast.Div):
            return
        where = self._hot_method(ctx)
        if where:
            ctx.report(
                node, "RPL202",
                f"true division `/` inside {where} produces floats; "
                f"aggregator state must stay exact",
                hint="use floor division `//` on integers, or defer the "
                     "division to finalize()")

    def visit_BinOp(self, node: ast.BinOp, ctx: ModuleContext) -> None:
        self._check_div(node, node.op, ctx)

    def visit_AugAssign(self, node: ast.AugAssign, ctx: ModuleContext) -> None:
        self._check_div(node, node.op, ctx)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        where = self._hot_method(ctx)
        if not where:
            return
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            ctx.report(
                node, "RPL204",
                f"float(...) cast inside {where}: aggregator state must "
                f"stay exact integers until finalize()",
                hint="use int(...) — or move the cast to finalize()")
            return
        # numpy float *attributes* (np.float64 et al.) are reported once by
        # visit_Attribute; here we catch the bare-`float`-as-dtype spellings.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == "float":
                    ctx.report(
                        node, "RPL203",
                        f"astype to a float dtype inside {where}",
                        hint="keep integer dtypes in the hot zone; widen "
                             "with astype(np.int64) if overflow looms")
        for keyword in node.keywords:
            if keyword.arg == "dtype" \
                    and isinstance(keyword.value, ast.Name) \
                    and keyword.value.id == "float":
                ctx.report(
                    keyword.value, "RPL203",
                    f"float dtype in {where}: aggregator arrays must be "
                    f"integer dtyped",
                    hint="use an integer dtype (np.int64) for accumulator "
                         "arrays")

    def visit_Attribute(self, node: ast.Attribute, ctx: ModuleContext) -> None:
        if node.attr not in _NUMPY_FLOAT_ATTRS:
            return
        where = self._hot_method(ctx)
        if not where:
            return
        resolved = ctx.resolve_dotted(node) or ""
        if resolved.startswith("numpy."):
            ctx.report(
                node, "RPL203",
                f"numpy float dtype reference `{resolved}` inside {where}",
                hint="the bit-identity zone is integer-only; move float "
                     "work to finalize()")
