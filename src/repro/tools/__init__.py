"""Developer tooling that ships with the repo (not part of the protocol
runtime): currently the static-analysis suite, ``repro.tools.lint``."""
