"""Count-Mean-Sketch (CMS): the Apple-style LDP frequency oracle [33].

The paper's introduction cites Apple's iOS deployment as the second industrial
LDP heavy-hitters system; its frequency oracle is the Count-Mean-Sketch:

* the server publishes k independent hash functions ``h_1..h_k : X -> [m]``;
* each user samples one hash index j uniformly, encodes her value as the
  one-hot vector of ``h_j(x)`` over the m buckets, randomizes every bit with
  the symmetric unary encoding at budget ε, and sends (j, noisy vector);
* the server debiases each row's bucket counts and answers a query x by
  averaging, over the k rows, the debiased count of bucket ``h_j(x)``, with a
  collision correction factor ``m/(m-1)`` (a uniformly random colliding value
  adds 1/m of its mass to every bucket).

It has the same O~(sqrt(n))-memory / O(1)-query profile as Hashtogram but uses
mean-of-rows instead of disjoint repetitions with sign hashes, so it serves
both as an industrial baseline for the E4/A2 style comparisons and as an
alternative final-stage oracle.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.frequency.base import FrequencyOracle
from repro.hashing.kwise import KWiseHash
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_domain_element, check_epsilon, check_positive_int


class CountMeanSketchOracle(FrequencyOracle):
    """ε-LDP Count-Mean-Sketch frequency oracle.

    Parameters
    ----------
    domain_size:
        Size of the value domain |X|.
    epsilon:
        Per-user privacy budget (one report per user).
    num_hashes:
        Number of hash rows k (Apple uses 65536 buckets x 1024 hashes at scale;
        laptop-scale defaults are far smaller).
    num_buckets:
        Bucket range m of each hash; ``None`` picks ``max(16, ceil(sqrt(n)))``
        when :meth:`collect` learns n.
    """

    def __init__(self, domain_size: int, epsilon: float, num_hashes: int = 16,
                 num_buckets: Optional[int] = None) -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self.num_hashes = check_positive_int(num_hashes, "num_hashes")
        if num_buckets is not None:
            check_positive_int(num_buckets, "num_buckets")
        self.num_buckets = num_buckets
        self._num_users = 0
        self._hashes: List[KWiseHash] = []
        self._debiased: Optional[np.ndarray] = None
        self._row_counts: Optional[np.ndarray] = None
        # Symmetric unary-encoding bit probabilities at budget epsilon.
        half = math.exp(epsilon / 2.0)
        self._p = half / (half + 1.0)
        self._q = 1.0 / (half + 1.0)

    # ----- wire protocol --------------------------------------------------------------

    def public_params(self, num_users: Optional[int] = None,
                      rng: RandomState = None):
        """Sample wire-level public parameters for this oracle configuration."""
        from repro.protocol.count_mean_sketch import CountMeanSketchParams
        num_buckets = self.num_buckets
        if num_buckets is None:
            n = int(num_users) if num_users is not None else 1
            num_buckets = max(16, int(math.ceil(math.sqrt(max(n, 1)))))
        return CountMeanSketchParams.create(self.domain_size, self.epsilon,
                                            num_hashes=self.num_hashes,
                                            num_buckets=num_buckets, rng=rng)

    def _load_wire_aggregate(self, aggregator) -> None:
        """Adopt a finalized wire aggregate (hash rows + debiased table)."""
        params = aggregator.params
        self.num_buckets = params.num_buckets
        self._hashes = list(params.hashes)
        self._debiased = aggregator.debiased()
        self._row_counts = aggregator._row_counts.copy()
        self._num_users = aggregator.num_reports
        self._report_bits = params.report_bits
        self._server_state_size = aggregator.state_size
        self._public_randomness_bits = params.public_randomness_bits

    # ----- collection ----------------------------------------------------------------

    def collect(self, values: Sequence[int], rng: RandomState = None,
                workers: int = 1, chunk_size: Optional[int] = None) -> None:
        """Simulate the full protocol: ``encode_batch → absorb_batch → finalize``.

        The generator first samples the published hash rows
        (:meth:`public_params`), then seeds the engine's canonical chunk
        plan (:func:`repro.engine.run_simulation`); chunked streaming keeps
        the m-bit reports from materializing an O(n * m) matrix and makes
        the result bit-identical for any ``workers`` count.
        """
        from repro.engine import run_simulation
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        params = self.public_params(num_users=int(values.size), rng=gen)
        aggregator = run_simulation(params, values, rng=gen, workers=workers,
                                    chunk_size=chunk_size).aggregator
        self._load_wire_aggregate(aggregator)

    # ----- estimation -----------------------------------------------------------------

    def estimate(self, x: int) -> float:
        self._require_collected()
        x = check_domain_element(x, self.domain_size)
        m = self.num_buckets
        total = 0.0
        for row in range(self.num_hashes):
            bucket = int(self._hashes[row](x))
            row_total = float(self._row_counts[row])
            # Collision correction: a colliding value contributes its full count
            # with probability 1/m, so subtract the expected collision mass and
            # rescale by m/(m-1); then rescale the row's share to the population.
            row_estimate = (self._debiased[row, bucket] - row_total / m) * m / (m - 1)
            total += row_estimate
        return float(total)

    def estimate_many(self, xs) -> np.ndarray:
        self._require_collected()
        xs = np.asarray(list(xs), dtype=np.int64)
        if xs.size == 0:
            return np.zeros(0)
        if xs.min() < 0 or xs.max() >= self.domain_size:
            raise ValueError("queries outside the declared domain")
        m = self.num_buckets
        totals = np.zeros(xs.shape, dtype=float)
        for row in range(self.num_hashes):
            buckets = np.asarray(self._hashes[row](xs))
            row_total = float(self._row_counts[row])
            totals += (self._debiased[row, buckets] - row_total / m) * m / (m - 1)
        return totals

    # ----- accounting ------------------------------------------------------------------

    @property
    def public_randomness_bits(self) -> int:
        """Cached when the wire aggregate is adopted (see the hashtogram note)."""
        return getattr(self, "_public_randomness_bits", 0)

    @property
    def estimator_variance(self) -> float:
        """Approximate variance of one frequency estimate (noise + collisions)."""
        if self._row_counts is None:
            return float("nan")
        var_user = self._q * (1.0 - self._q) / (self._p - self._q) ** 2
        noise = float(sum(count * var_user for count in self._row_counts))
        collisions = float(sum(count / max(self.num_buckets, 2)
                               for count in self._row_counts))
        return noise + collisions

    def expected_error(self, beta: float) -> float:
        """High-probability error bound for one query (Gaussian approximation)."""
        if not 0 < beta < 1:
            raise ValueError("beta must lie in (0, 1)")
        return math.sqrt(2.0 * self.estimator_variance * math.log(2.0 / beta))
