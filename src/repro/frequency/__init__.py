"""Locally private frequency oracles (Theorems 3.7 and 3.8).

A frequency oracle collects one differentially private report per user and can
afterwards estimate the multiplicity ``f_S(x)`` of any queried domain element.
Two constructions are provided, mirroring the two Hashtogram variants the
paper's analysis uses:

* :class:`ExplicitHistogramOracle` — the small-domain oracle of Theorem 3.8:
  users randomize their value directly over the (small) domain; the server
  debiases the aggregate.  Error ``O((1/ε) sqrt(n log(1/β)))`` per query.
* :class:`HashtogramOracle` — the general oracle of Theorem 3.7: users are
  partitioned into repetitions, each repetition hashes the domain into a small
  bucket range (with a sign hash for collision cancellation) and runs a
  small-domain oracle over the buckets.  Error
  ``O((1/ε) sqrt(n log(min(n,|X|)/β)))`` per query with O~(sqrt(n)) server
  memory.
* :class:`CountMeanSketchOracle` — the Apple-style Count-Mean-Sketch [33]:
  k hash rows, mean-of-rows estimation with collision correction.  Included as
  the second industrial baseline; same asymptotic profile as Hashtogram.
"""

from repro.frequency.base import FrequencyOracle
from repro.frequency.count_mean_sketch import CountMeanSketchOracle
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.frequency.hashtogram import HashtogramOracle

__all__ = [
    "FrequencyOracle",
    "ExplicitHistogramOracle",
    "HashtogramOracle",
    "CountMeanSketchOracle",
]
