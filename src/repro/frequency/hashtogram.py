"""Hashtogram: the general-domain frequency oracle of Theorem 3.7.

Construction (following Bassily-Nissim-Stemmer-Thakurta [3]):

* users are partitioned into ``num_repetitions`` groups;
* repetition t publishes a pairwise independent bucket hash
  ``h_t : X -> [num_buckets]`` and a sign hash ``s_t : X -> {-1, +1}``;
* each user in repetition t runs the *small-domain* oracle
  (:class:`~repro.frequency.explicit.ExplicitHistogramOracle`) over the domain
  of (bucket, sign-bit) cells on her pair ``(h_t(x), s_t(x))``;
* to answer a query x, the server combines, across repetitions, the signed
  difference of the two cells x hashes into — collisions cancel in expectation
  thanks to the sign hash (the count-sketch trick), and summing over the
  disjoint repetitions yields an unbiased estimate of ``f_S(x)``.

The server memory is ``num_repetitions * 2 * num_buckets`` scalars — with the
default ``num_buckets ≈ sqrt(n)`` this is the ``O~(sqrt(n))`` row of Table 1 —
and each query costs O(num_repetitions) time.

The wire-level client/server decomposition lives in
:mod:`repro.protocol.hashtogram`; :meth:`HashtogramOracle.collect` is the
one-shot simulation convenience built on it
(``encode_batch → absorb_batch → finalize``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.frequency.base import FrequencyOracle
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.hashing.kwise import KWiseHash, SignHash
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_domain_element, check_epsilon, check_positive_int


class HashtogramOracle(FrequencyOracle):
    """ε-LDP frequency oracle for arbitrary (large) domains.

    Parameters
    ----------
    domain_size:
        Size of the value domain |X|.
    epsilon:
        Per-user privacy budget (each user sends a single report).
    num_repetitions:
        Number of independent hash repetitions R (more repetitions reduce the
        collision-induced variance; the default 5 matches the O~(1) public
        randomness budget).
    num_buckets:
        Bucket range of each repetition.  ``None`` (default) selects
        ``max(16, ceil(sqrt(n)))`` when :meth:`collect` learns n.
    inner_randomizer:
        Randomizer used by the per-repetition small-domain oracle
        ("hadamard", "oue", or "krr").
    """

    def __init__(self, domain_size: int, epsilon: float, num_repetitions: int = 5,
                 num_buckets: Optional[int] = None,
                 inner_randomizer: str = "hadamard") -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self.num_repetitions = check_positive_int(num_repetitions, "num_repetitions")
        if num_buckets is not None:
            check_positive_int(num_buckets, "num_buckets")
        self.num_buckets = num_buckets
        self.inner_randomizer = inner_randomizer
        self._num_users = 0
        self._bucket_hashes: List[KWiseHash] = []
        self._sign_hashes: List[SignHash] = []
        self._inner_oracles: List[ExplicitHistogramOracle] = []
        self._rep_sizes: List[int] = []

    # ----- wire protocol --------------------------------------------------------------

    def public_params(self, num_users: Optional[int] = None,
                      rng: RandomState = None):
        """Sample wire-level public parameters for this oracle configuration.

        ``num_users`` resolves the default ``num_buckets ≈ sqrt(n)`` when no
        explicit bucket count was given.
        """
        from repro.protocol.hashtogram import HashtogramParams
        num_buckets = self.num_buckets
        if num_buckets is None:
            n = int(num_users) if num_users is not None else 1
            num_buckets = max(16, int(math.ceil(math.sqrt(max(n, 1)))))
        return HashtogramParams.create(self.domain_size, self.epsilon,
                                       num_repetitions=self.num_repetitions,
                                       num_buckets=num_buckets,
                                       inner_randomizer=self.inner_randomizer,
                                       rng=rng)

    def _load_wire_aggregate(self, aggregator) -> None:
        """Adopt a finalized wire aggregate (hashes + inner oracles + sizes)."""
        params = aggregator.params
        self.num_buckets = params.num_buckets
        self._bucket_hashes = list(params.bucket_hashes)
        self._sign_hashes = list(params.sign_hashes)
        self._inner_oracles = [inner.finalize() for inner in aggregator._inner]
        self._rep_sizes = aggregator.repetition_sizes
        self._num_users = aggregator.num_reports
        self._report_bits = params.report_bits
        self._server_state_size = aggregator.state_size
        self._public_randomness_bits = params.public_randomness_bits

    # ----- collection ---------------------------------------------------------------

    def collect(self, values: Sequence[int], rng: RandomState = None,
                workers: int = 1, chunk_size: Optional[int] = None) -> None:
        """Simulate the full protocol: ``encode_batch → absorb_batch → finalize``.

        The generator first samples the published hash functions
        (:meth:`public_params`) and then seeds the engine's canonical chunk
        plan (:func:`repro.engine.run_simulation`), so a wire-level engine
        run with the same seed — serial or across ``workers`` processes —
        reproduces ``collect`` bit for bit.
        """
        from repro.engine import run_simulation
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        params = self.public_params(num_users=int(values.size), rng=gen)
        aggregator = run_simulation(params, values, rng=gen, workers=workers,
                                    chunk_size=chunk_size).aggregator
        self._load_wire_aggregate(aggregator)

    # ----- estimation -----------------------------------------------------------------

    def estimate(self, x: int) -> float:
        self._require_collected()
        x = check_domain_element(x, self.domain_size)
        total = 0.0
        for t, oracle in enumerate(self._inner_oracles):
            if oracle.num_users == 0:
                continue  # an empty repetition contributes no signal
            bucket = int(self._bucket_hashes[t](x))
            sign = int(self._sign_hashes[t](x))
            plus = oracle.estimate(2 * bucket + 1)
            minus = oracle.estimate(2 * bucket)
            total += sign * (plus - minus)
        return float(total)

    def estimate_many(self, xs) -> np.ndarray:
        self._require_collected()
        xs = np.asarray(list(xs), dtype=np.int64)
        if xs.size == 0:
            return np.zeros(0)
        if xs.min() < 0 or xs.max() >= self.domain_size:
            raise ValueError("queries outside the declared domain")
        totals = np.zeros(xs.shape, dtype=float)
        for t, oracle in enumerate(self._inner_oracles):
            if oracle.num_users == 0:
                continue  # an empty repetition contributes no signal
            buckets = np.asarray(self._bucket_hashes[t](xs))
            signs = np.asarray(self._sign_hashes[t](xs)).astype(float)
            plus = oracle.estimate_many(2 * buckets + 1)
            minus = oracle.estimate_many(2 * buckets)
            totals += signs * (plus - minus)
        return totals

    # ----- accounting -----------------------------------------------------------------

    @property
    def public_randomness_bits(self) -> int:
        """Bits of public randomness consumed by the published hash functions.

        Cached when the wire aggregate is adopted — re-summing
        ``description_bits`` over the hash objects on every accounting call
        is avoidable O(num_repetitions) work.
        """
        return getattr(self, "_public_randomness_bits", 0)

    @property
    def estimator_variance(self) -> float:
        """Approximate variance of a single frequency estimate.

        The noise contributions of the repetitions add up (each repetition
        holds a disjoint subset of users), and each repetition additionally
        contributes collision variance of roughly ``n_t / num_buckets``.
        """
        if not self._inner_oracles:
            return float("nan")
        total = 0.0
        for oracle, n_t in zip(self._inner_oracles, self._rep_sizes, strict=True):
            total += 2.0 * n_t * oracle.estimator_variance_per_user
            total += n_t / max(self.num_buckets, 1)
        return total

    def expected_error(self, beta: float) -> float:
        """High-probability error bound for one query (Gaussian approximation)."""
        if not 0 < beta < 1:
            raise ValueError("beta must lie in (0, 1)")
        return math.sqrt(2.0 * self.estimator_variance * math.log(2.0 / beta))
