"""Small-domain frequency oracle (the Theorem 3.8 variant of Hashtogram).

Each user randomizes her value *directly* over the domain with one of three
interchangeable local randomizers, and the server debiases the aggregate:

* ``"hadamard"`` (default) — Hadamard response: O(1) communication per user,
  constant per-user variance, server decodes with a fast Walsh-Hadamard
  transform.  This is what the heavy-hitters protocol uses internally.
* ``"oue"`` — optimised unary encoding: k bits of communication, minimal
  variance among bit-flipping schemes.
* ``"krr"`` — generalised (k-ary) randomized response: log k bits of
  communication, best for very small domains.

The wire-level client/server decomposition lives in
:mod:`repro.protocol.explicit`: :meth:`collect` is a simulation convenience
implemented exactly as ``encode_batch → absorb_batch → finalize`` over the
same :class:`~repro.protocol.explicit.ExplicitHistogramParams`, so a sharded
deployment reproduces ``collect()``'s estimates bit for bit.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.frequency.base import FrequencyOracle
from repro.utils.bits import next_power_of_two
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_domain_element, check_epsilon, check_positive_int


def fast_walsh_hadamard_transform(vector: np.ndarray) -> np.ndarray:
    """Fast Walsh-Hadamard transform (length must be a power of two).

    The input is not modified; the butterflies are applied to a single working
    copy with one length-n/2 temporary per level, so the transform of a
    multi-million-entry accumulator stays allocation-light.
    """
    vec = np.array(vector, dtype=float, copy=True)
    n = vec.shape[0]
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    h = 1
    while h < n:
        view = vec.reshape(-1, 2 * h)
        left = view[:, :h]
        right = view[:, h:]
        difference = left - right          # one temporary per level
        left += right                      # in-place: left + right
        right[:] = difference
        h *= 2
    return vec


class ExplicitHistogramOracle(FrequencyOracle):
    """ε-LDP frequency oracle over a small explicit domain.

    Parameters
    ----------
    domain_size:
        Number of possible values k (queries are integers in [0, k)).
    epsilon:
        Per-user privacy budget.
    randomizer:
        One of ``"hadamard"``, ``"oue"``, ``"krr"``.
    """

    def __init__(self, domain_size: int, epsilon: float,
                 randomizer: str = "hadamard") -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        if randomizer not in ("hadamard", "oue", "krr"):
            raise ValueError("randomizer must be 'hadamard', 'oue' or 'krr'")
        self.randomizer = randomizer
        self._num_users = 0
        self._histogram: Optional[np.ndarray] = None

        exp_eps = math.exp(epsilon)
        if randomizer == "hadamard":
            self._padded = next_power_of_two(domain_size + 1)
            self._keep_prob = exp_eps / (exp_eps + 1.0)
            self._attenuation = (exp_eps - 1.0) / (exp_eps + 1.0)
            self._report_bits = math.log2(self._padded) + 1.0
            self._server_state_size = self._padded
        elif randomizer == "oue":
            self._p = 0.5
            self._q = 1.0 / (exp_eps + 1.0)
            self._report_bits = float(domain_size)
            self._server_state_size = domain_size
        else:  # krr
            self._p = exp_eps / (exp_eps + domain_size - 1.0)
            self._q = 1.0 / (exp_eps + domain_size - 1.0)
            self._report_bits = max(math.log2(domain_size), 1.0)
            self._server_state_size = domain_size

    # ----- wire protocol --------------------------------------------------------

    def public_params(self):
        """The wire-level public parameters of this oracle configuration."""
        from repro.protocol.explicit import ExplicitHistogramParams
        return ExplicitHistogramParams(self.domain_size, self.epsilon,
                                       self.randomizer)

    def _load_wire_aggregate(self, histogram: np.ndarray, num_users: int,
                             state_size: int) -> None:
        """Adopt a finalized server aggregate (the wire path's last step)."""
        self._histogram = np.asarray(histogram, dtype=float)
        self._num_users = int(num_users)
        self._server_state_size = int(state_size)

    # ----- collection -----------------------------------------------------------

    def collect(self, values: Sequence[int], rng: RandomState = None,
                workers: int = 1, chunk_size: Optional[int] = None) -> None:
        """Simulate the full protocol: ``encode_batch → absorb_batch → finalize``.

        The simulation runs the engine's canonical chunk plan
        (:func:`repro.engine.run_simulation`): encoding is streamed in
        chunks with pre-drawn per-chunk seeds, so the OUE variant's k-bit
        reports never materialize an O(n * k) matrix and the result is
        bit-identical for any ``workers`` count.
        """
        from repro.engine import run_simulation
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        params = self.public_params()
        aggregator = run_simulation(params, values, rng=gen, workers=workers,
                                    chunk_size=chunk_size).aggregator
        self._load_wire_aggregate(aggregator.histogram(),
                                  aggregator.num_reports,
                                  aggregator.state_size)

    # ----- estimation -------------------------------------------------------------

    def estimate(self, x: int) -> float:
        self._require_collected()
        x = check_domain_element(x, self.domain_size)
        return float(self._histogram[x])

    def estimate_many(self, xs) -> np.ndarray:
        self._require_collected()
        xs = np.asarray(list(xs), dtype=np.int64)
        if xs.size and (xs.min() < 0 or xs.max() >= self.domain_size):
            raise ValueError("queries outside the declared domain")
        return self._histogram[xs].astype(float)

    def histogram(self) -> np.ndarray:
        """Debiased frequency estimates for the entire domain."""
        self._require_collected()
        return np.array(self._histogram, copy=True)

    # ----- analysis ------------------------------------------------------------------

    @property
    def estimator_variance_per_user(self) -> float:
        """Per-user variance of the debiased estimator for a single cell."""
        if self.randomizer == "hadamard":
            return 1.0 / self._attenuation**2
        return self._q * (1.0 - self._q) / (self._p - self._q) ** 2

    def expected_error(self, beta: float) -> float:
        """High-probability error bound for a single query at failure probability β.

        Gaussian-approximation bound: ``sqrt(2 n Var ln(2/β))``, matching the
        ``O((1/ε) sqrt(n log(1/β)))`` shape of Theorem 3.8.
        """
        if not 0 < beta < 1:
            raise ValueError("beta must lie in (0, 1)")
        return math.sqrt(2.0 * max(self._num_users, 1)
                         * self.estimator_variance_per_user * math.log(2.0 / beta))
