"""Abstract interface shared by all locally private frequency oracles."""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.utils.rng import RandomState


class FrequencyOracle(abc.ABC):
    """A locally private protocol estimating element frequencies (Definition 3.2).

    The deployment-shaped API lives in :mod:`repro.protocol`: the server
    publishes serializable ``PublicParams``, each client encodes one report
    with a stateless ``ClientEncoder``, and sharded ``ServerAggregator``
    workers ``absorb`` reports, ``merge``, and ``finalize()`` into a fitted
    oracle.  This class is the *query* interface those aggregators finalize
    into, plus a one-shot simulation convenience:

    1. construct with a privacy budget and domain description;
    2. :meth:`collect` the (true) values of the participating users — a thin
       compatibility shim implemented exactly as
       ``encode_batch → absorb_batch → finalize`` over the wire protocol, so
       it may be called once per protocol execution and reproduces a sharded
       deployment bit for bit;
    3. :meth:`estimate` the frequency of any domain element.

    Implementations record the resource quantities needed for Table 1
    (communication per user, server state size) as attributes, derived from
    the actual serialized report size and retained aggregator state.
    """

    #: privacy parameter ε of the whole oracle (each user's report is ε-DP)
    epsilon: float
    #: approximate-DP parameter (0 for all oracles in this library)
    delta: float = 0.0
    #: size of the value domain
    domain_size: int

    @abc.abstractmethod
    def collect(self, values: Sequence[int], rng: RandomState = None,
                workers: int = 1, chunk_size: Optional[int] = None) -> None:
        """Simulate the protocol on the given (distributed) database.

        ``values[i]`` is user i's true value; the method encodes each value
        through the oracle's wire-level client encoder and ingests the
        resulting reports through the engine's canonical chunk plan
        (``encode_batch → absorb_batch → finalize``;
        :func:`repro.engine.run_simulation`).  ``workers > 1`` spreads the
        chunks over a process pool; the fitted oracle is bit-identical for
        every worker count, and ``chunk_size`` overrides the canonical
        chunking (it must match between two runs being compared).
        """

    @abc.abstractmethod
    def estimate(self, x: int) -> float:
        """Estimate the frequency of domain element ``x`` (after :meth:`collect`)."""

    # ----- conveniences --------------------------------------------------------

    def estimate_many(self, xs: Iterable[int]) -> np.ndarray:
        """Estimate a batch of queries (default: loop over :meth:`estimate`)."""
        return np.array([self.estimate(int(x)) for x in xs], dtype=float)

    @property
    def num_users(self) -> int:
        """Number of users whose reports have been collected."""
        return getattr(self, "_num_users", 0)

    @property
    def report_bits(self) -> float:
        """Bits of communication per user (NaN if not tracked)."""
        return getattr(self, "_report_bits", float("nan"))

    @property
    def server_state_size(self) -> int:
        """Number of scalars retained by the server after aggregation."""
        return getattr(self, "_server_state_size", 0)

    def _require_collected(self) -> None:
        if self.num_users == 0:
            raise RuntimeError("collect() must be called before estimating")
