"""Anti-concentration of sums of independent bits (Theorem 7.5, Cor. 7.6, Thm A.5).

The lower bound of Section 7 needs the *reverse* of a concentration bound: a
sum of independent bits with non-trivial variance must *escape* any interval
of length ``o(sqrt(σ² log(1/β)))`` with probability at least β.  This module
provides

* exact Poisson-binomial distribution computations (for validating the bounds
  numerically and for the property-based tests),
* the interval-escape probability of a Poisson-binomial sum,
* the Corollary 7.6 / Theorem A.5 interval half-width formula, and
* empirical escape-probability estimation from samples (used by the E9
  benchmark).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive_int, check_probability


def poisson_binomial_pmf(probabilities: Sequence[float]) -> np.ndarray:
    """Exact pmf of a sum of independent Bernoulli(p_i) variables.

    Returns an array of length ``len(probabilities) + 1`` whose entry j is
    ``Pr[sum = j]``, computed by direct convolution (O(k²), exact).
    """
    probs = [check_probability(p, "probability") for p in probabilities]
    pmf = np.array([1.0])
    for p in probs:
        extended = np.zeros(pmf.size + 1)
        extended[:-1] += pmf * (1.0 - p)
        extended[1:] += pmf * p
        pmf = extended
    return pmf


def poisson_binomial_moments(probabilities: Sequence[float]) -> tuple[float, float]:
    """Mean and variance of a Poisson-binomial sum."""
    probs = np.asarray(list(probabilities), dtype=float)
    mean = float(probs.sum())
    variance = float((probs * (1.0 - probs)).sum())
    return mean, variance


def interval_escape_probability(probabilities: Sequence[float], low: float,
                                high: float) -> float:
    """Exact ``Pr[X ∉ [low, high]]`` for a Poisson-binomial sum X."""
    if low > high:
        raise ValueError("low must not exceed high")
    pmf = poisson_binomial_pmf(probabilities)
    support = np.arange(pmf.size)
    inside = (support >= low) & (support <= high)
    return float(pmf[~inside].sum())


def corollary_interval_halfwidth(variance: float, beta: float,
                                 constant: float = 0.25) -> float:
    """Corollary 7.6 / Theorem A.5 half-width ``(c/2) sqrt(σ² log(1/β))``.

    Any interval of at most twice this half-width is escaped with probability
    at least β (for β not too small and σ not too small); the unspecified
    constant of the corollary is exposed as ``constant``.
    """
    if variance < 0:
        raise ValueError("variance must be non-negative")
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    return constant * math.sqrt(variance * math.log(1.0 / beta))


def theorem_a5_conditions_hold(num_bits: int, beta: float, b_constant: float = 0.1,
                               mean_low: float = 0.1, mean_high: float = 0.9,
                               means: Sequence[float] | None = None) -> bool:
    """Check the hypotheses of Theorem A.5 for a given instance.

    Theorem A.5 requires every bit's mean to lie in [1/10, 9/10] and
    ``β >= 2^{-b n}`` for a universal constant b.
    """
    check_positive_int(num_bits, "num_bits")
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    if means is not None:
        if any(not mean_low <= m <= mean_high for m in means):
            return False
    return beta >= 2.0 ** (-b_constant * num_bits)


def empirical_escape_probability(samples: Sequence[float], center: float,
                                 halfwidth: float) -> float:
    """Fraction of samples outside ``[center - halfwidth, center + halfwidth]``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    if halfwidth < 0:
        raise ValueError("halfwidth must be non-negative")
    outside = (arr < center - halfwidth) | (arr > center + halfwidth)
    return float(outside.mean())


def binomial_tail_lower_bound(num_trials: int, p: float, deviation: float) -> float:
    """Theorem A.4 lower bound on ``Pr[Bin(n,p) <= np - t]`` (= upper-tail bound too).

    Valid for ``0 < p <= 1/2`` and ``sqrt(3np) <= t <= np/2``; returns
    ``exp(-9 t² / (np))``.
    """
    check_positive_int(num_trials, "num_trials")
    if not 0 < p <= 0.5:
        raise ValueError("p must lie in (0, 1/2]")
    np_ = num_trials * p
    if not math.sqrt(3.0 * np_) <= deviation <= np_ / 2.0:
        raise ValueError("deviation outside the theorem's validity range")
    return math.exp(-9.0 * deviation**2 / np_)


def uniform_tail_lower_bound(num_bits: int, shift: float) -> float:
    """Lemma 5.5: ``Pr[|U| >= k/2 + t sqrt(k)] >= exp(-3t²)/(k+1)`` for uniform bits."""
    check_positive_int(num_bits, "num_bits")
    if not 0 <= shift <= math.sqrt(num_bits) / 2.0:
        raise ValueError("shift must lie in [0, sqrt(k)/2]")
    return math.exp(-3.0 * shift**2) / (num_bits + 1)
