"""The Theorem 7.2 lower-bound experiment: counting on a replicated random database.

The proof of Theorem 7.2 constructs a hard instance as follows: draw
``S = (X_1, ..., X_m) ∈ {0,1}^m`` uniformly at random with ``m = C ε² n``, and
build ``D ∈ {0,1}^n`` by replicating each bit of S exactly ``n/m`` times.  Any
(ε, δ)-LDP protocol counting the ones of D to within Δ yields (after
renormalising by m/n) an estimate of the ones of S with error ``C ε² Δ / 1``;
but advanced grouposition + the mutual-information bound show that most bits
of S remain nearly unbiased given the transcript, so anti-concentration of
their sum forces error ``Ω(sqrt(m log(1/β))) = Ω(ε sqrt(n log(1/β)))`` on S,
i.e. ``Δ = Ω((1/ε) sqrt(n log(1/β)))`` on D.

:class:`CountingLowerBoundExperiment` runs this construction end to end with a
concrete (optimal, unbiased) ε-LDP counting protocol — randomized response
with debiasing — and records the empirical error quantiles, which the E9
benchmark compares against the lower-bound curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.bounds import lower_bound_error
from repro.randomizers.randomized_response import BinaryRandomizedResponse
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int, check_probability


def replicated_database(num_source_bits: int, num_users: int,
                        rng: RandomState = None) -> Tuple[np.ndarray, np.ndarray]:
    """Draw S uniform in {0,1}^m and replicate it into D of length n.

    Each source bit is copied ``ceil(n/m)`` or ``floor(n/m)`` times so that D
    has exactly n entries; the replication counts differ by at most one, which
    only perturbs the renormalisation constant.
    """
    check_positive_int(num_source_bits, "num_source_bits")
    check_positive_int(num_users, "num_users")
    if num_source_bits > num_users:
        raise ValueError("the source database cannot be longer than the user database")
    gen = as_generator(rng)
    source = gen.integers(0, 2, size=num_source_bits).astype(np.int64)
    replication = np.full(num_source_bits, num_users // num_source_bits, dtype=np.int64)
    replication[: num_users % num_source_bits] += 1
    replicated = np.repeat(source, replication)
    return source, replicated


def randomized_response_count(database: np.ndarray, epsilon: float,
                              rng: RandomState = None) -> float:
    """Unbiased ε-LDP estimate of the number of ones in a bit database.

    Each user applies binary randomized response; the server debiases the sum.
    This is the canonical optimal counting protocol, so its error profile is
    exactly what the lower bound is tight against.
    """
    check_epsilon(epsilon)
    gen = as_generator(rng)
    randomizer = BinaryRandomizedResponse(epsilon)
    reports = randomizer.randomize_many(np.asarray(database, dtype=np.int64), gen)
    return randomizer.unbiased_count(reports)


@dataclass(frozen=True)
class LowerBoundTrialSummary:
    """Error quantiles of the counting protocol across repeated trials."""

    num_users: int
    num_source_bits: int
    epsilon: float
    errors_on_users: np.ndarray
    errors_on_source: np.ndarray

    def quantile(self, beta: float) -> float:
        """The (1-β)-quantile of the error on the user database D."""
        check_probability(beta, "beta", allow_zero=False, allow_one=False)
        return float(np.quantile(self.errors_on_users, 1.0 - beta))

    def exceed_probability(self, threshold: float) -> float:
        """Fraction of trials whose error on D exceeded ``threshold``."""
        return float((self.errors_on_users > threshold).mean())


class CountingLowerBoundExperiment:
    """Runs the replicated-database construction for the Theorem 7.2 experiment.

    Parameters
    ----------
    num_users:
        n — the number of users of the counting protocol.
    epsilon:
        ε — the privacy parameter.
    replication_constant:
        The constant C in ``m = C ε² n`` (the paper takes C large; any constant
        works for exhibiting the scaling).
    """

    def __init__(self, num_users: int, epsilon: float,
                 replication_constant: float = 1.0) -> None:
        self.num_users = check_positive_int(num_users, "num_users")
        self.epsilon = check_epsilon(epsilon)
        if replication_constant <= 0:
            raise ValueError("replication_constant must be positive")
        self.replication_constant = float(replication_constant)

    @property
    def num_source_bits(self) -> int:
        """m = C ε² n, clamped to [8, n]."""
        m = int(round(self.replication_constant * self.epsilon**2 * self.num_users))
        return max(8, min(m, self.num_users))

    def run_trials(self, num_trials: int, rng: RandomState = None
                   ) -> LowerBoundTrialSummary:
        """Run the construction ``num_trials`` times and collect error samples."""
        check_positive_int(num_trials, "num_trials")
        gen = as_generator(rng)
        m = self.num_source_bits
        errors_users = np.empty(num_trials)
        errors_source = np.empty(num_trials)
        for trial in range(num_trials):
            source, replicated = replicated_database(m, self.num_users, gen)
            estimate_users = randomized_response_count(replicated, self.epsilon, gen)
            true_users = float(replicated.sum())
            errors_users[trial] = abs(estimate_users - true_users)
            # Renormalise to the source database (Equation 12 in the proof).
            scale = m / self.num_users
            errors_source[trial] = scale * errors_users[trial]
        return LowerBoundTrialSummary(
            num_users=self.num_users,
            num_source_bits=m,
            epsilon=self.epsilon,
            errors_on_users=errors_users,
            errors_on_source=errors_source,
        )

    def lower_bound_curve(self, betas: Sequence[float], domain_size: int = 2,
                          constant: float = 0.25) -> List[float]:
        """The Theorem 7.2 curve ``c (1/ε) sqrt(n log(|X|/β))`` over a β sweep."""
        return [lower_bound_error(self.num_users, domain_size, self.epsilon, beta,
                                  constant=constant) for beta in betas]

    def comparison_table(self, betas: Sequence[float], num_trials: int = 200,
                         rng: RandomState = None) -> Dict[str, List[float]]:
        """Measured (1-β)-quantile error vs the lower-bound curve, per β."""
        summary = self.run_trials(num_trials, rng)
        measured = [summary.quantile(beta) for beta in betas]
        bound = self.lower_bound_curve(betas)
        return {
            "beta": list(betas),
            "measured_quantile": measured,
            "lower_bound": bound,
        }

    def upper_bound_error(self, beta: float) -> float:
        """Matching upper bound for the counting protocol itself.

        Randomized response with debiasing has per-user variance
        ``p(1-p)/(2p-1)²``; a Gaussian tail gives error
        ``sqrt(2 n Var ln(2/β))``, matching the lower bound's shape in both n
        and β.
        """
        check_probability(beta, "beta", allow_zero=False, allow_one=False)
        randomizer = BinaryRandomizedResponse(self.epsilon)
        variance = randomizer.estimator_variance_per_user
        return math.sqrt(2.0 * self.num_users * variance * math.log(2.0 / beta))
