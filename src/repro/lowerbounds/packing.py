"""Packing lower bounds implied by advanced grouposition (Section 1.1).

The paper observes that the strong group privacy of the local model is a
"mixed blessing": it yields *stronger* packing lower bounds for pure-private
local protocols than the central model's.  A packing argument works as
follows: if a protocol can distinguish (with constant probability) between
``N`` pairwise "far" databases that each differ from a reference database in
at most k entries, then group privacy forces

    central model:  e^{kε}   >= Ω(N)   =>  k = Ω(log N / ε),
    local model:    e^{ε'}   >= Ω(N)  with ε' ≈ kε²/2 + ε sqrt(2k log N)
                                       =>  k = Ω(log N / ε²).

The local bound is *quadratically* stronger in 1/ε — this is the mechanism by
which the heavy-hitters lower bound picks up its 1/ε·sqrt(log) dependence.
These helpers evaluate both sides so the relationship can be benchmarked.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_epsilon, check_positive_int, check_probability


def selection_lower_bound_central(num_alternatives: int, epsilon: float,
                                  failure_probability: float = 1.0 / 3.0) -> float:
    """Minimum group size k needed to distinguish N alternatives under central ε-DP.

    From ``e^{kε} (β-ish) >= 1/N``: ``k >= ln(N (1 - β)) / ε``.
    """
    check_positive_int(num_alternatives, "num_alternatives")
    check_epsilon(epsilon)
    check_probability(failure_probability, "failure_probability",
                      allow_zero=False, allow_one=False)
    return math.log(num_alternatives * (1.0 - failure_probability)) / epsilon


def selection_lower_bound_local(num_alternatives: int, epsilon: float,
                                failure_probability: float = 1.0 / 3.0) -> float:
    """Minimum group size k to distinguish N alternatives under pure ε-LDP.

    Advanced grouposition gives privacy loss ``kε²/2 + ε sqrt(2k ln(1/δ))``
    for groups of size k, so distinguishing N alternatives needs that quantity
    to reach ``ln(N(1-β))``; solving the quadratic in sqrt(k) gives the bound
    returned here.  For small ε it behaves like ``2 ln N / ε²`` — quadratically
    stronger than the central bound.
    """
    check_positive_int(num_alternatives, "num_alternatives")
    check_epsilon(epsilon)
    check_probability(failure_probability, "failure_probability",
                      allow_zero=False, allow_one=False)
    target = math.log(num_alternatives * (1.0 - failure_probability))
    if target <= 0:
        return 0.0
    delta = min(failure_probability, 0.1)
    # Solve (ε²/2) k + ε sqrt(2 ln(1/δ)) sqrt(k) - target = 0 for sqrt(k).
    a = epsilon**2 / 2.0
    b = epsilon * math.sqrt(2.0 * math.log(1.0 / delta))
    c = -target
    sqrt_k = (-b + math.sqrt(b**2 - 4.0 * a * c)) / (2.0 * a)
    return sqrt_k**2


def packing_lower_bound_users(domain_size: int, epsilon: float,
                              failure_probability: float = 1.0 / 3.0,
                              model: str = "local") -> float:
    """Minimum number of users needed to identify one planted heavy element.

    The packing family consists of the |X| databases in which all users hold
    the same element; identifying the element is a selection problem with
    N = |X| alternatives and group size k = n.  ``model`` selects which group
    privacy bound to apply.
    """
    check_positive_int(domain_size, "domain_size")
    if model == "central":
        return selection_lower_bound_central(domain_size, epsilon, failure_probability)
    if model == "local":
        return selection_lower_bound_local(domain_size, epsilon, failure_probability)
    raise ValueError("model must be 'central' or 'local'")


def packing_advantage(domain_size: int, epsilon: float) -> float:
    """Ratio (local packing bound) / (central packing bound) — about 2/ε for small ε."""
    central = packing_lower_bound_users(domain_size, epsilon, model="central")
    local = packing_lower_bound_users(domain_size, epsilon, model="local")
    if central <= 0:
        return float("inf")
    return local / central
