"""Lower bounds (Section 7) and the anti-concentration toolbox behind them.

* :mod:`repro.lowerbounds.anti_concentration` — Theorem 7.5 / Corollary 7.6 /
  Theorem A.5: anti-concentration of sums of independent bounded variables,
  with exact Poisson-binomial computations for validating the bounds.
* :mod:`repro.lowerbounds.counting` — the Theorem 7.2 experiment: a uniformly
  random database S replicated into D, an ε-LDP counting protocol run on D,
  and the resulting error compared against the ``Ω((1/ε) sqrt(n log(1/β)))``
  lower-bound curve.
* :mod:`repro.lowerbounds.packing` — packing-style lower bounds implied by
  advanced grouposition (the "mixed blessing" of Section 1.1).
"""

from repro.lowerbounds.anti_concentration import (
    poisson_binomial_pmf,
    interval_escape_probability,
    corollary_interval_halfwidth,
    empirical_escape_probability,
)
from repro.lowerbounds.counting import (
    CountingLowerBoundExperiment,
    replicated_database,
    randomized_response_count,
)
from repro.lowerbounds.packing import (
    packing_lower_bound_users,
    selection_lower_bound_local,
    selection_lower_bound_central,
)

__all__ = [
    "poisson_binomial_pmf",
    "interval_escape_probability",
    "corollary_interval_halfwidth",
    "empirical_escape_probability",
    "CountingLowerBoundExperiment",
    "replicated_database",
    "randomized_response_count",
    "packing_lower_bound_users",
    "selection_lower_bound_local",
    "selection_lower_bound_central",
]
