"""Scoring heavy-hitter outputs against the requirements of Definition 3.1.

A heavy-hitters protocol with error Δ and failure probability β must output a
list ``Est ⊆ X × R`` such that (with probability 1-β):

1. every estimate in the list is within Δ of the true frequency, and
2. every Δ-heavy element appears in the list,

while keeping the list length ``O(n/Δ)``.  :func:`score_heavy_hitters` measures
all three quantities for a concrete output so benchmarks and tests can check
them directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np


def true_frequencies(data: Sequence[int]) -> Dict[int, int]:
    """Exact multiplicities ``f_S(x)`` of every element appearing in ``data``."""
    arr = np.asarray(data)
    if arr.dtype.kind in "iu" and arr.ndim == 1:
        elements, counts = np.unique(arr, return_counts=True)
        return {int(x): int(c) for x, c in zip(elements, counts, strict=True)}
    return dict(Counter(int(x) for x in data))


def heavy_elements(data: Sequence[int], threshold: float) -> List[int]:
    """All elements with multiplicity at least ``threshold`` (Δ-heavy elements)."""
    freq = true_frequencies(data)
    return sorted(x for x, f in freq.items() if f >= threshold)


def frequency_estimation_errors(estimates: Mapping[int, float],
                                data: Sequence[int]) -> Dict[int, float]:
    """Absolute error of each estimate against the true multiplicity in ``data``."""
    freq = true_frequencies(data)
    return {int(x): abs(float(a) - freq.get(int(x), 0)) for x, a in estimates.items()}


@dataclass(frozen=True)
class HeavyHitterScore:
    """Quality metrics of one heavy-hitters output against ground truth.

    Attributes
    ----------
    max_estimation_error:
        ``max |a - f_S(x)|`` over the returned list (0 if the list is empty).
    missed_heavy:
        Δ-heavy elements (for the given Δ) that are *not* in the returned list.
    recall:
        Fraction of Δ-heavy elements present in the list (1.0 if there are none).
    detection_threshold:
        The smallest frequency ``f`` such that every element with true frequency
        >= f was recovered.  This is the empirical analogue of the "for every x
        with f_S(x) >= Δ, x ∈ Est" guarantee: a smaller value is better.
    list_size:
        Length of the returned list.
    false_positive_mass:
        Sum of estimated frequencies attributed to elements with true frequency
        zero (useful for diagnosing decode noise).
    """

    max_estimation_error: float
    missed_heavy: Tuple[int, ...]
    recall: float
    detection_threshold: float
    list_size: int
    false_positive_mass: float

    @property
    def succeeded(self) -> bool:
        """True if every Δ-heavy element was recovered (recall == 1)."""
        return not self.missed_heavy


def score_heavy_hitters(estimates: Mapping[int, float], data: Sequence[int],
                        threshold: float) -> HeavyHitterScore:
    """Score an output list against Definition 3.1 with error parameter Δ=threshold."""
    freq = true_frequencies(data)
    est = {int(x): float(a) for x, a in estimates.items()}

    errors = [abs(a - freq.get(x, 0)) for x, a in est.items()]
    max_err = max(errors) if errors else 0.0

    heavy = [x for x, f in freq.items() if f >= threshold]
    missed = tuple(sorted(x for x in heavy if x not in est))
    recall = 1.0 if not heavy else (len(heavy) - len(missed)) / len(heavy)

    # Empirical detection threshold: smallest f such that all elements with
    # true frequency >= f appear in the list.  Computed by scanning true
    # frequencies from the largest downwards.
    by_freq = sorted(freq.items(), key=lambda kv: -kv[1])
    detection = 0.0
    for x, f in by_freq:
        if x not in est:
            detection = float(f) + 1.0
            break
    false_mass = sum(a for x, a in est.items() if freq.get(x, 0) == 0 and a > 0)

    return HeavyHitterScore(
        max_estimation_error=float(max_err),
        missed_heavy=missed,
        recall=float(recall),
        detection_threshold=float(detection),
        list_size=len(est),
        false_positive_mass=float(false_mass),
    )


def query_errors(oracle_estimates: Mapping[int, float], data: Sequence[int],
                 query_set: Iterable[int]) -> np.ndarray:
    """Vectorized absolute errors of an estimate table over a query set.

    The estimate table is anything mapping elements to estimates — a plain
    dict, a :class:`~repro.core.results.HeavyHitterResult`'s ``estimates``,
    or the output of a fitted oracle's batch ``estimate_many`` zipped with
    its queries.  Unlisted queries count as estimate 0.
    """
    freq = true_frequencies(data)
    queries = np.asarray(list(query_set), dtype=np.int64)
    if queries.size == 0:
        return np.zeros(0)
    estimates = np.array([float(oracle_estimates.get(int(x), 0.0))
                          for x in queries.tolist()])
    truth = np.array([freq.get(int(x), 0) for x in queries.tolist()],
                     dtype=float)
    return np.abs(estimates - truth)


def worst_case_frequency_error(oracle_estimates: Mapping[int, float],
                               data: Sequence[int],
                               query_set: Iterable[int]) -> float:
    """Worst-case error of a frequency oracle over an explicit query set."""
    errors = query_errors(oracle_estimates, data, query_set)
    return float(errors.max()) if errors.size else 0.0


def mean_squared_frequency_error(oracle_estimates: Mapping[int, float],
                                 data: Sequence[int],
                                 query_set: Iterable[int]) -> float:
    """Mean squared error of a frequency oracle over an explicit query set."""
    errors = query_errors(oracle_estimates, data, query_set)
    if errors.size == 0:
        return 0.0
    return float(np.mean(errors**2))


def empirical_failure_rate(scores: Sequence[HeavyHitterScore]) -> float:
    """Fraction of trials in which at least one Δ-heavy element was missed."""
    if not scores:
        raise ValueError("scores must be non-empty")
    return sum(0 if s.succeeded else 1 for s in scores) / len(scores)
