"""Concentration and anti-concentration inequalities used throughout the paper.

This module implements, as evaluable functions, the probabilistic toolbox of
Section 3.2:

* Theorem 3.9 (Poisson approximation penalty ``e * sqrt(n)``),
* Theorem 3.10 (Poisson tail bounds),
* Theorem 3.11 (multiplicative Chernoff, including the limited-independence
  upper tail of Schmidt-Siegel-Srinivasan),
* Theorem 3.12 (limited-independence Bernstein inequality of Kane et al.),
* Hoeffding's inequality (used in the advanced grouposition proof, Thm 4.2).

These are *bounds* — functions from parameters to a probability (or a
deviation) — used both inside parameter selection for the protocol and in the
benchmarks that compare measured failure rates against the analysis.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_in_range, check_positive


def chernoff_upper_tail(mu: float, alpha: float, independence: int | None = None) -> float:
    """Upper-tail multiplicative Chernoff bound, Theorem 3.11.

    Returns an upper bound on ``Pr[X >= mu(1 + alpha)]`` for a sum X of 0/1
    random variables with mean ``mu`` and ``0 <= alpha <= 1``.

    If ``independence`` is given, the bound is only valid when the summands are
    ``ceil(mu * alpha)``-wise independent (Theorem 3.11 item 1); we check that
    the supplied independence is sufficient and raise otherwise, since silently
    returning an invalid bound would corrupt parameter selection.
    """
    check_positive(mu, "mu")
    check_in_range(alpha, 0.0, 1.0, "alpha")
    if independence is not None:
        required = math.ceil(mu * alpha)
        if independence < required:
            raise ValueError(
                f"Chernoff upper tail under limited independence requires "
                f"{required}-wise independence, got {independence}")
    return math.exp(-(alpha**2) * mu / 3.0)


def chernoff_lower_tail(mu: float, alpha: float) -> float:
    """Lower-tail multiplicative Chernoff bound, Theorem 3.11 item 2.

    Returns an upper bound on ``Pr[X <= mu(1 - alpha)]`` for fully independent
    0/1 summands with mean ``mu`` and ``0 <= alpha <= 1``.
    """
    check_positive(mu, "mu")
    check_in_range(alpha, 0.0, 1.0, "alpha")
    return math.exp(-(alpha**2) * mu / 2.0)


def poisson_tail_upper(mu: float, alpha: float) -> float:
    """Poisson upper tail, Theorem 3.10: ``Pr[X >= mu(1+alpha)] <= exp(-alpha^2 mu / 2)``."""
    check_positive(mu, "mu")
    check_in_range(alpha, 0.0, 1.0, "alpha")
    return math.exp(-(alpha**2) * mu / 2.0)


def poisson_tail_lower(mu: float, alpha: float) -> float:
    """Poisson lower tail, Theorem 3.10: ``Pr[X <= mu(1-alpha)] <= exp(-alpha^2 mu / 2)``."""
    check_positive(mu, "mu")
    check_in_range(alpha, 0.0, 1.0, "alpha")
    return math.exp(-(alpha**2) * mu / 2.0)


def poissonization_penalty(num_balls: int) -> float:
    """Theorem 3.9 penalty factor ``e * sqrt(n)``.

    Any event with probability p in the independent-Poisson model has
    probability at most ``p * e * sqrt(n)`` in the exact balls-in-bins model.
    """
    if num_balls < 0:
        raise ValueError("num_balls must be non-negative")
    return math.e * math.sqrt(max(num_balls, 1))


def bernstein_limited_independence(sigma: float, bound: float, k: int, deviation: float,
                                   constant: float = 2.0) -> float:
    """Limited-independence Bernstein inequality, Theorem 3.12 (Kane et al.).

    For k-wise independent summands (k even) each bounded by ``bound`` in
    magnitude with total variance ``sigma**2``, the probability of deviating
    from the mean by more than ``deviation`` is at most

        ``C^k * ((sigma * sqrt(k) / deviation)^k + (bound * k / deviation)^k)``.

    The universal constant C is not pinned down in the paper; ``constant``
    exposes it (2.0 is a safe published value).  The return value is clipped to
    1 since any probability bound above 1 is vacuous.
    """
    check_positive(deviation, "deviation")
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be an even integer >= 2")
    if sigma < 0 or bound < 0:
        raise ValueError("sigma and bound must be non-negative")
    term_sigma = (sigma * math.sqrt(k) / deviation) ** k
    term_bound = (bound * k / deviation) ** k
    value = (constant ** k) * (term_sigma + term_bound)
    return min(value, 1.0)


def hoeffding_tail(num_terms: int, half_width: float, deviation: float) -> float:
    """Hoeffding bound for a sum of independent terms in ``[-half_width, half_width]``.

    Returns an upper bound on ``Pr[X - E[X] > deviation]``:
    ``exp(-deviation^2 / (2 * n * half_width^2))``.  This is exactly the form
    used in the advanced-grouposition proof (Theorem 4.2), where each privacy
    loss term is bounded by ε in magnitude.
    """
    if num_terms <= 0:
        raise ValueError("num_terms must be positive")
    check_positive(half_width, "half_width")
    check_positive(deviation, "deviation")
    return math.exp(-(deviation**2) / (2.0 * num_terms * half_width**2))


def binomial_entropy_lower_tail(num_trials: int, shift: float) -> float:
    """Lemma 5.5 anti-concentration for uniform bits.

    For ``U`` uniform on {0,1}^k, ``Pr[|U| >= k/2 + t*sqrt(k)] >= exp(-3 t^2)/(k+1)``
    for ``t in [0, sqrt(k)/2]``.  ``shift`` is the t parameter.
    """
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    if not 0 <= shift <= math.sqrt(num_trials) / 2:
        raise ValueError("shift must lie in [0, sqrt(k)/2]")
    return math.exp(-3.0 * shift**2) / (num_trials + 1)


def binomial_anticoncentration_lower(num_trials: int, p: float, deviation: float) -> float:
    """Theorem A.4 (Klein-Young) anti-concentration lower bound.

    For ``0 < p <= 1/2`` and ``sqrt(3 n p) <= t <= n p / 2``:
    ``Pr[Bin(n, p) <= np - t] >= exp(-9 t^2 / (np))`` and symmetrically for the
    upper tail.  Returns the common lower bound on each one-sided tail.
    """
    check_positive(deviation, "deviation")
    if not 0 < p <= 0.5:
        raise ValueError("p must lie in (0, 1/2]")
    np_ = num_trials * p
    if not math.sqrt(3 * np_) <= deviation <= np_ / 2:
        raise ValueError("deviation outside the validity range [sqrt(3np), np/2]")
    return math.exp(-9.0 * deviation**2 / np_)
