"""Analytical tools: concentration inequalities, theoretical error bounds, metrics.

* :mod:`repro.analysis.concentration` implements the probabilistic toolbox the
  paper's proofs rely on (Theorems 3.9-3.12): Poisson approximation and tails,
  multiplicative Chernoff bounds under limited independence, and the limited
  independence Bernstein inequality.
* :mod:`repro.analysis.bounds` turns the rows of Table 1 and the theorem
  statements of Sections 3 and 7 into evaluable formulas, so benchmarks can plot
  measured error against the predicted envelope.
* :mod:`repro.analysis.metrics` scores heavy-hitter outputs against ground
  truth exactly as Definition 3.1 requires (recall of Δ-heavy elements, maximum
  estimation error, list-size budget).
"""

from repro.analysis.bounds import (
    Table1Row,
    frequency_oracle_error,
    heavy_hitter_error_bassily_et_al,
    heavy_hitter_error_bassily_smith,
    heavy_hitter_error_this_work,
    lower_bound_error,
    table1_rows,
)
from repro.analysis.concentration import (
    bernstein_limited_independence,
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_tail,
    poisson_tail_lower,
    poisson_tail_upper,
    poissonization_penalty,
)
from repro.analysis.metrics import (
    HeavyHitterScore,
    frequency_estimation_errors,
    score_heavy_hitters,
    true_frequencies,
)

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "poisson_tail_upper",
    "poisson_tail_lower",
    "poissonization_penalty",
    "bernstein_limited_independence",
    "hoeffding_tail",
    "heavy_hitter_error_this_work",
    "heavy_hitter_error_bassily_et_al",
    "heavy_hitter_error_bassily_smith",
    "frequency_oracle_error",
    "lower_bound_error",
    "Table1Row",
    "table1_rows",
    "HeavyHitterScore",
    "score_heavy_hitters",
    "true_frequencies",
    "frequency_estimation_errors",
]
