"""Theoretical error bounds and the rows of Table 1 as evaluable formulas.

The paper's headline comparison (Table 1) is between three protocols:

==============================  =============================================
This work (PrivateExpanderSketch)  error ``O((1/ε) sqrt(n log(|X|/β)))``
Bassily et al. [3]                 error ``O((1/ε) sqrt(n log(|X|/β) log(1/β)))``
Bassily and Smith [4]              error ``O((log^{1.5}(1/β)/ε) sqrt(n log |X|))``
==============================  =============================================

together with the matching lower bound of Theorem 7.2,
``Ω((1/ε) sqrt(n log(|X|/β)))``.  The functions below evaluate these bounds
(with unit constants, since the paper's constants are unspecified) so that
benchmarks can overlay measured error on the predicted scaling and check the
*shape*: who wins, by what factor, and how each curve reacts to β.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.utils.validation import check_epsilon, check_positive_int, check_probability


def _check_args(n: int, domain_size: int, epsilon: float, beta: float) -> None:
    check_positive_int(n, "n")
    check_positive_int(domain_size, "domain_size")
    check_epsilon(epsilon)
    check_probability(beta, "beta", allow_zero=False, allow_one=False)


def heavy_hitter_error_this_work(n: int, domain_size: int, epsilon: float, beta: float,
                                 constant: float = 1.0) -> float:
    """Theorem 3.13 error: ``(C/ε) sqrt(n log(|X|/β))``."""
    _check_args(n, domain_size, epsilon, beta)
    return constant / epsilon * math.sqrt(n * math.log(domain_size / beta))


def heavy_hitter_error_bassily_et_al(n: int, domain_size: int, epsilon: float, beta: float,
                                     constant: float = 1.0) -> float:
    """Theorem 3.3 detection threshold: ``(C/ε) sqrt(n log(|X|/β) log(1/β))``."""
    _check_args(n, domain_size, epsilon, beta)
    return (constant / epsilon
            * math.sqrt(n * math.log(domain_size / beta) * math.log(1.0 / beta)))


def heavy_hitter_error_bassily_smith(n: int, domain_size: int, epsilon: float, beta: float,
                                     constant: float = 1.0) -> float:
    """Bassily-Smith [4] error: ``C log^{1.5}(1/β)/ε * sqrt(n log |X|)``."""
    _check_args(n, domain_size, epsilon, beta)
    return (constant * math.log(1.0 / beta) ** 1.5 / epsilon
            * math.sqrt(n * math.log(domain_size)))


def frequency_oracle_error(n: int, domain_size: int, epsilon: float, beta: float,
                           constant: float = 1.0) -> float:
    """Theorem 3.7 per-query error of Hashtogram: ``(C/ε) sqrt(n log(min(n,|X|)/β))``."""
    _check_args(n, domain_size, epsilon, beta)
    return constant / epsilon * math.sqrt(n * math.log(min(n, domain_size) / beta))


def frequency_oracle_error_small_domain(n: int, epsilon: float, beta: float,
                                        constant: float = 1.0) -> float:
    """Theorem 3.8 per-query error for small domains: ``(C/ε) sqrt(n log(1/β))``."""
    check_positive_int(n, "n")
    check_epsilon(epsilon)
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    return constant / epsilon * math.sqrt(n * math.log(1.0 / beta))


def lower_bound_error(n: int, domain_size: int, epsilon: float, beta: float,
                      constant: float = 1.0) -> float:
    """Theorem 7.2 lower bound: ``Ω((1/ε) sqrt(n log(|X|/β)))``."""
    _check_args(n, domain_size, epsilon, beta)
    return constant / epsilon * math.sqrt(n * math.log(domain_size / beta))


def advanced_grouposition_epsilon(k: int, epsilon: float, delta_prime: float) -> float:
    """Theorem 4.2 group-privacy parameter: ``kε²/2 + ε sqrt(2k ln(1/δ'))``."""
    check_positive_int(k, "k")
    check_epsilon(epsilon)
    check_probability(delta_prime, "delta_prime", allow_zero=False, allow_one=False)
    return k * epsilon**2 / 2.0 + epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta_prime))


def central_grouposition_epsilon(k: int, epsilon: float) -> float:
    """Central-model group privacy: exactly ``kε``."""
    check_positive_int(k, "k")
    check_epsilon(epsilon)
    return k * epsilon


def max_information_bound(n: int, epsilon: float, beta: float) -> float:
    """Theorem 4.5: β-approximate max-information of an ε-LDP protocol,
    ``nε²/2 + ε sqrt(2n ln(1/β))`` (in nats)."""
    check_positive_int(n, "n")
    check_epsilon(epsilon)
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    return n * epsilon**2 / 2.0 + epsilon * math.sqrt(2.0 * n * math.log(1.0 / beta))


def central_max_information_bound(n: int, epsilon: float) -> float:
    """Dwork et al. [8]: ε-DP algorithms have max-information O(εn) (unit constant)."""
    check_positive_int(n, "n")
    check_epsilon(epsilon)
    return epsilon * n


def composed_rr_epsilon(k: int, epsilon: float, beta: float) -> float:
    """Theorem 5.1 privacy of the approximate composed randomized response:
    ``ε̃ = 6 ε sqrt(k ln(1/β))``."""
    check_positive_int(k, "k")
    check_epsilon(epsilon)
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    return 6.0 * epsilon * math.sqrt(k * math.log(1.0 / beta))


def genprot_tv_distance(n: int, epsilon: float, delta: float, num_candidates: int) -> float:
    """Theorem 6.1 utility loss of GenProt in total variation distance:
    ``n ((1/2 + ε)^T + 6 T δ e^ε / (1 - e^{-ε}))``."""
    check_positive_int(n, "n")
    check_epsilon(epsilon)
    check_positive_int(num_candidates, "num_candidates")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    term_empty = n * (0.5 + epsilon) ** num_candidates
    term_delta = n * 6.0 * num_candidates * delta * math.exp(epsilon) / (1.0 - math.exp(-epsilon))
    return term_empty + term_delta


def genprot_report_bits(num_candidates: int) -> int:
    """GenProt per-user report size: an index into [T], i.e. ceil(log2 T) bits."""
    check_positive_int(num_candidates, "num_candidates")
    return max(int(math.ceil(math.log2(num_candidates))), 1)


@dataclass(frozen=True)
class Table1Row:
    """One protocol's column of Table 1 as asymptotic formulas (unit constants).

    ``server_time``, ``user_time``, ``server_memory``, ``communication_bits``
    and ``public_randomness`` are expressed as functions of n (ignoring shared
    polylog factors the paper hides in the O~ notation); ``error`` is the
    worst-case error bound as a function of (n, |X|, ε, β).
    """

    name: str
    server_time: str
    user_time: str
    server_memory: str
    communication: str
    public_randomness: str
    error_formula: str

    def error(self, n: int, domain_size: int, epsilon: float, beta: float) -> float:
        if self.name == "this_work":
            return heavy_hitter_error_this_work(n, domain_size, epsilon, beta)
        if self.name == "bassily_et_al":
            return heavy_hitter_error_bassily_et_al(n, domain_size, epsilon, beta)
        if self.name == "bassily_smith":
            return heavy_hitter_error_bassily_smith(n, domain_size, epsilon, beta)
        raise ValueError(f"unknown protocol row {self.name!r}")


def table1_rows() -> List[Table1Row]:
    """The three comparison rows of Table 1, in the paper's order."""
    return [
        Table1Row(
            name="this_work",
            server_time="O~(n)",
            user_time="O~(1)",
            server_memory="O~(sqrt(n))",
            communication="O(1)",
            public_randomness="O~(1)",
            error_formula="(1/eps) sqrt(n log(|X|/beta))",
        ),
        Table1Row(
            name="bassily_et_al",
            server_time="O~(n)",
            user_time="O~(1)",
            server_memory="O~(sqrt(n))",
            communication="O(1)",
            public_randomness="O~(1)",
            error_formula="(1/eps) sqrt(n log(|X|/beta) log(1/beta))",
        ),
        Table1Row(
            name="bassily_smith",
            server_time="O~(n^2.5)",
            user_time="O~(n^1.5)",
            server_memory="O~(n^2)",
            communication="O(1)",
            public_randomness="O~(n^1.5)",
            error_formula="(log^{1.5}(1/beta)/eps) sqrt(n log |X|)",
        ),
    ]


def table1_error_comparison(n: int, domain_size: int, epsilon: float,
                            betas: List[float]) -> Dict[str, List[float]]:
    """Evaluate every Table 1 error formula on a sweep of failure probabilities."""
    rows = table1_rows()
    return {
        row.name: [row.error(n, domain_size, epsilon, beta) for beta in betas]
        for row in rows
    }
