"""Engine scaling benchmark: ingest throughput versus worker count.

Produces the payload that ``python -m repro.cli bench`` writes to
``BENCH_engine.json`` and that ``benchmarks/bench_engine_scaling.py`` prints:
for each protocol and worker count, the wall-clock of one full
encode → absorb → merge round, the implied reports/s, and the speedup over
the 1-worker run on the same host.  Every run is also checked for bit-exact
agreement with the 1-worker estimates — parallelism must never change the
output, only the wall-clock.
"""

from __future__ import annotations

import math
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.engine import run_simulation
from repro.utils.rng import as_generator

__all__ = ["build_bench_params", "run_engine_bench", "DEFAULT_WORKER_COUNTS"]

DEFAULT_WORKER_COUNTS = (1, 2, 4)
BENCH_PROTOCOLS = ("hashtogram", "explicit", "cms")


def build_bench_params(protocol: str, domain_size: int, epsilon: float,
                       num_users: int, rng=None):
    """Public parameters used by the scaling benchmark (and ``cli simulate``)."""
    from repro.protocol import (
        CountMeanSketchParams,
        ExplicitHistogramParams,
        HashtogramParams,
    )
    gen = as_generator(rng)
    buckets = max(16, int(math.ceil(math.sqrt(max(num_users, 1)))))
    if protocol == "explicit":
        return ExplicitHistogramParams(domain_size, epsilon)
    if protocol == "cms":
        return CountMeanSketchParams.create(domain_size, epsilon,
                                            num_buckets=buckets, rng=gen)
    if protocol == "hashtogram":
        return HashtogramParams.create(domain_size, epsilon,
                                       num_buckets=buckets, rng=gen)
    raise ValueError(f"unknown bench protocol {protocol!r}; "
                     f"choose from {BENCH_PROTOCOLS}")


def _sample_queries(domain_size: int, count: int = 64) -> np.ndarray:
    return np.random.default_rng(0).integers(0, domain_size, size=count)


def run_engine_bench(protocols: Sequence[str] = ("hashtogram",),
                     worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
                     num_users: int = 200_000, domain_size: int = 1 << 16,
                     epsilon: float = 1.0, seed: int = 0,
                     repeats: int = 1,
                     chunk_size: Optional[int] = None,
                     result_format: str = "binary") -> Dict[str, object]:
    """Run the scaling sweep and return the ``BENCH_engine.json`` payload.

    For each protocol the workload and the public parameters are sampled
    once; each worker count then replays the *same* chunk plan (a fresh
    generator with the same seed is used per run, so every run draws the
    same chunk seeds).  ``elapsed_s`` is the best of ``repeats`` timings.

    The ``speedup_vs_1`` / ``identical_to_1_worker`` fields are always
    measured against a real 1-worker run: if ``worker_counts`` does not
    contain 1, a baseline run is prepended to the sweep.
    """
    from repro.workloads.distributions import zipf_workload

    worker_counts = list(worker_counts)
    if 1 not in worker_counts:
        worker_counts.insert(0, 1)
    results: List[Dict[str, object]] = []
    for protocol in protocols:
        setup_gen = as_generator(seed)
        values = zipf_workload(num_users, domain_size,
                               support=min(2_000, domain_size), rng=setup_gen)
        params = build_bench_params(protocol, domain_size, epsilon, num_users,
                                    rng=setup_gen)
        queries = _sample_queries(domain_size)
        runs = []
        for workers in worker_counts:
            best: Optional[Dict[str, float]] = None
            estimates = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                # A fresh generator per run: every run derives the same
                # chunk seeds, so estimates must agree bit for bit.
                result = run_simulation(params, values, rng=np.random.default_rng(seed),
                                        workers=workers, chunk_size=chunk_size,
                                        result_format=result_format)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best["elapsed_s"]:
                    best = {"elapsed_s": elapsed,
                            "ingest_s": result.ingest_s,
                            "merge_s": result.merge_s}
                    estimates = result.finalize().estimate_many(queries)
            runs.append((int(workers), best, estimates,
                         num_users / max(best["elapsed_s"], 1e-9)))
        baseline = next(run for run in runs if run[0] == 1)
        for workers, best, estimates, rate in runs:
            results.append({
                "protocol": protocol,
                "workers": workers,
                "num_users": int(num_users),
                "elapsed_s": round(best["elapsed_s"], 4),
                "ingest_s": round(best["ingest_s"], 4),
                "merge_s": round(best["merge_s"], 4),
                "reports_per_s": int(rate),
                "speedup_vs_1": round(rate / max(baseline[3], 1e-9), 3),
                "identical_to_1_worker": bool(
                    np.array_equal(estimates, baseline[2])),
            })
    return {
        "benchmark": "engine_scaling",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "num_users": int(num_users),
            "domain_size": int(domain_size),
            "epsilon": float(epsilon),
            "seed": int(seed),
            "repeats": int(max(1, repeats)),
            "worker_counts": [int(w) for w in worker_counts],
            "protocols": list(protocols),
            "result_format": str(result_format),
        },
        "results": results,
    }
