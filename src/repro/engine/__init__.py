"""Multiprocess simulation engine over the client/server wire API.

The engine makes the ROADMAP's "heavy traffic" scenarios runnable on laptop
and CI hardware: it partitions a user population into deterministic chunks
(:mod:`repro.engine.partition`), runs the ``encode_batch → absorb_batch``
loop for each chunk — in-process or across a ``ProcessPoolExecutor``
(:mod:`repro.engine.engine`) — and merges the exact-integer aggregator states
with the wire API's commutative merge, so the finalized estimates are
bit-identical for any worker count.  :mod:`repro.engine.bench` measures the
scaling and backs ``python -m repro.cli bench``.

Typical million-user run (see ``examples/million_user_run.py``)::

    from repro.engine import run_simulation
    from repro.protocol import HashtogramParams

    params = HashtogramParams.create(1 << 20, 1.0, num_buckets=1024, rng=0)
    result = run_simulation(params, values, rng=1, workers=4)
    oracle = result.finalize()          # == the workers=1 run, bit for bit

The same canonical chunk stream (:func:`encode_stream`) is what
``python -m repro.cli load-test`` feeds to the live ingestion service
(:mod:`repro.server`) — and because the plan and seeds are fixed up front,
the *served* estimates are verifiable bit-for-bit against
:func:`run_simulation` under the same seed (see ``docs/architecture.md``).
"""

from repro.engine.bench import run_engine_bench
from repro.engine.engine import (
    EngineResult,
    encode_concat,
    encode_stream,
    run_simulation,
)
from repro.engine.partition import (
    Chunk,
    ShardPartition,
    default_chunk_size,
    derive_chunk_seeds,
    make_plan,
    plan_chunks,
)

__all__ = [
    "Chunk",
    "EngineResult",
    "ShardPartition",
    "default_chunk_size",
    "derive_chunk_seeds",
    "encode_concat",
    "encode_stream",
    "make_plan",
    "plan_chunks",
    "run_engine_bench",
    "run_simulation",
]
