"""Deterministic partitioning of a user population into encode/ingest chunks.

The multiprocess engine and the legacy one-shot simulation paths
(``FrequencyOracle.collect`` / ``HeavyHitterProtocol.run``) share one chunking
scheme, which is what makes parallel execution reproducible:

* the population ``[0, n)`` is cut into contiguous chunks of a canonical size
  that depends only on the public parameters (``default_chunk_size``), never
  on the worker count;
* one 63-bit seed per chunk is drawn *up front* from the caller's generator
  (``derive_chunk_seeds``), so chunk i's client randomness is
  ``np.random.default_rng(seeds[i])`` no matter which process encodes it, in
  which order;
* chunk i's users keep their global indices (``first_user_index = start``), so
  index-keyed assignment policies (round-robin repetitions, the published
  assignment hash of the heavy-hitters protocols) are partition-invariant.

Because every aggregator keeps exact integer state and ``merge`` is
commutative and associative, *any* assignment of chunks to workers produces
the same merged aggregate bit for bit — 1 worker, N workers, or the serial
legacy path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hashing.kwise import KWiseHash
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "Chunk",
    "ShardPartition",
    "ROUTE_PRIME",
    "default_chunk_size",
    "derive_chunk_seeds",
    "plan_chunks",
    "make_plan",
]

#: field modulus of the shard-routing hash (the Mersenne prime 2^61 - 1);
#: route keys are reduced modulo this before hashing, so any 63-bit key —
#: a chunk's first user index, a device id — is a valid routing input
ROUTE_PRIME = (1 << 61) - 1

#: soft budget (in payload units, see ``default_chunk_size``) per encoded chunk
_TARGET_CHUNK_PAYLOAD = 4_000_000
#: chunk row-count bounds: small enough to bound peak memory for wide reports
#: and to give a worker pool useful scheduling granularity, large enough that
#: per-chunk numpy dispatch overhead stays negligible
_MIN_CHUNK_ROWS = 1_024
_MAX_CHUNK_ROWS = 16_384


@dataclass(frozen=True)
class Chunk:
    """One contiguous slice of the user population, with its client seed."""

    #: position of the chunk in the plan (0-based)
    index: int
    #: first global user index of the chunk (inclusive)
    start: int
    #: last global user index of the chunk (exclusive)
    stop: int
    #: seed of the chunk's client-side generator
    seed: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def route_key(self) -> int:
        """The chunk's canonical shard-routing key: its first user index.

        Stamped onto ``reports`` frames (the shard-routing header of
        ``docs/wire-protocol.md``) so a cluster router partitions the
        canonical chunk stream with :class:`ShardPartition` exactly as the
        engine partitions users into chunks — a pure function of the public
        plan, never of connection order.
        """
        return self.start

    def generator(self) -> np.random.Generator:
        """The chunk's client-side generator (same in every process)."""
        return np.random.default_rng(self.seed)


@dataclass(frozen=True)
class ShardPartition:
    """A published pairwise-independent partition of route keys into shards.

    This is the same partition device the protocols already rely on — a
    pairwise-independent polynomial hash over a prime field
    (:mod:`repro.hashing.kwise`), published as plain coefficients — applied
    to *shard routing*: ``shard_of(key)`` maps any 63-bit route key (a
    chunk's :attr:`Chunk.route_key`, a device id) to one of ``num_shards``
    shards.  Because the hash is stateless and serializable, every router
    replica (and a router restarted after a crash) routes the same key to
    the same shard; and because aggregator merges are exact, *any* routing
    still finalizes bit-identically — stability is an operational nicety
    (shard-local snapshots keep covering the same key range), not a
    correctness requirement.
    """

    hash: KWiseHash

    @property
    def num_shards(self) -> int:
        return int(self.hash.range_size)

    @classmethod
    def sample(cls, num_shards: int, rng: RandomState = None) -> "ShardPartition":
        """Draw a fresh partition over ``[0, num_shards)`` from ``rng``."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        gen = as_generator(rng)
        coefficients = (int(gen.integers(0, ROUTE_PRIME)),
                        int(gen.integers(1, ROUTE_PRIME)))
        return cls(KWiseHash(coefficients=coefficients, prime=ROUTE_PRIME,
                             range_size=int(num_shards)))

    def shard_of(self, key: int) -> int:
        """Shard index of one route key (deterministic, order-free)."""
        return int(self.hash(int(key) % ROUTE_PRIME))

    # ----- serialization (published alongside the cluster parameters) ---------------

    def to_dict(self) -> dict:
        """JSON-safe description (hash coefficients travel as plain ints)."""
        return {"coefficients": [int(c) for c in self.hash.coefficients],
                "prime": int(self.hash.prime),
                "num_shards": self.num_shards}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPartition":
        """Rebuild a partition from :meth:`to_dict` output."""
        return cls(KWiseHash(
            coefficients=tuple(int(c) for c in data["coefficients"]),
            prime=int(data["prime"]),
            range_size=int(data["num_shards"])))


def default_chunk_size(params) -> int:
    """Canonical rows-per-chunk for the given public parameters.

    Scales inversely with the report width so wide reports (e.g. the OUE
    randomizer's k-bit vectors, RAPPOR's Bloom bits) never materialize an
    ``O(n * k)`` batch, while narrow reports stream in large chunks.  The
    result is a pure function of the parameters — both the serial simulation
    shims and the multiprocess engine call this, which keeps their chunk
    plans (and therefore their outputs) identical.
    """
    width = max(1, int(round(params.report_bits)))
    rows = _TARGET_CHUNK_PAYLOAD // width
    return max(_MIN_CHUNK_ROWS, min(_MAX_CHUNK_ROWS, rows))


def derive_chunk_seeds(rng: RandomState, num_chunks: int) -> np.ndarray:
    """Draw one independent 63-bit client seed per chunk from ``rng``.

    The draw happens once, in chunk order, before any work is scheduled;
    afterwards each chunk's randomness is self-contained.  Mirrors
    :func:`repro.utils.rng.spawn_generators`.
    """
    if num_chunks < 0:
        raise ValueError("num_chunks must be non-negative")
    gen = as_generator(rng)
    return gen.integers(0, 2**63 - 1, size=num_chunks, dtype=np.int64)


def plan_chunks(num_users: int, chunk_size: int) -> List[range]:
    """Cut ``[0, num_users)`` into contiguous ``range(start, stop)`` spans."""
    if num_users < 0:
        raise ValueError("num_users must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [range(start, min(start + chunk_size, num_users))
            for start in range(0, num_users, chunk_size)]


def make_plan(params, num_users: int, rng: RandomState = None,
              chunk_size: Optional[int] = None) -> List[Chunk]:
    """The full execution plan: chunk boundaries plus per-chunk client seeds.

    ``rng`` is consumed exactly ``num_chunks`` integer draws, regardless of
    how the chunks are later distributed across workers.
    """
    size = int(chunk_size) if chunk_size is not None else default_chunk_size(params)
    spans = plan_chunks(int(num_users), size)
    seeds = derive_chunk_seeds(rng, len(spans))
    return [Chunk(index=i, start=span.start, stop=span.stop, seed=int(seed))
            for i, (span, seed) in enumerate(zip(spans, seeds, strict=True))]
