"""Multiprocess simulation engine over the client/server wire API.

The local model is embarrassingly parallel: every user encodes independently,
and server aggregation is a commutative, associative merge of exact integer
states.  This engine exploits both facts to run the chunk-streamed
``encode_batch → absorb_batch`` loop of :mod:`repro.protocol` across a
``ProcessPoolExecutor``:

1. :func:`repro.engine.partition.make_plan` cuts the population into
   contiguous chunks and draws one client seed per chunk up front;
2. the chunks are split into one contiguous span per worker; each worker
   process rebuilds the (pickle-stable) public parameters, encodes its chunks
   with their pre-drawn seeds, and absorbs them into a local aggregator;
3. the per-worker aggregators are merged
   (:func:`repro.protocol.merge_aggregators`) and finalized once.

Because the chunk plan and the chunk seeds never depend on the worker count,
``run_simulation(..., workers=N)`` is **bit-identical** to
``run_simulation(..., workers=1)`` — and to the legacy serial
``FrequencyOracle.collect`` / ``HeavyHitterProtocol.run`` shims, which stream
the same plan through :func:`encode_stream`.

The worker→parent result channel defaults to the binary state container of
:mod:`repro.protocol.binary` (``result_format="binary"``): each worker
returns one packed blob of its exact integer state and the parent rebuilds
the shard aggregator from the parameters it already holds, instead of
unpickling — and therefore re-deriving — a full parameter object per
worker result.  ``result_format="pickle"`` keeps the legacy object channel;
both merge bit-identically (``tests/test_wire_binary.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.engine.partition import Chunk, make_plan
from repro.protocol.binary import pack_state, unpack_state
from repro.protocol.wire import (
    PublicParams,
    ReportBatch,
    ServerAggregator,
    child_state,
    load_child_state,
    merge_aggregators,
)
from repro.utils.rng import RandomState

__all__ = ["EngineResult", "RESULT_FORMATS", "run_simulation",
           "encode_stream", "encode_concat"]

#: worker→parent result channel codecs accepted by :func:`run_simulation`
RESULT_FORMATS = ("binary", "pickle")


def _ingest_span(params: PublicParams, values_span: np.ndarray,
                 chunks: Sequence[Chunk], span_start: int) -> ServerAggregator:
    """Worker body: encode+absorb a contiguous span of chunks locally.

    Module-level so it pickles; ``params`` round-trips through its
    ``to_dict()`` payload (see ``PublicParams.__reduce__``) and the returned
    aggregator ships its exact integer state back to the parent.
    """
    encoder = params.make_encoder()
    aggregator = params.make_aggregator()
    for chunk in chunks:
        local = values_span[chunk.start - span_start:chunk.stop - span_start]
        aggregator.absorb_batch(encoder.encode_batch(
            local, chunk.generator(), first_user_index=chunk.start))
    return aggregator


def _ingest_span_packed(params: PublicParams, values_span: np.ndarray,
                        chunks: Sequence[Chunk], span_start: int) -> bytes:
    """:func:`_ingest_span` returning a packed binary state blob instead of
    the aggregator object.

    Pickling the aggregator ships its public parameters with it (through
    their ``to_dict()`` payload), so the parent re-runs parameter
    construction once *per worker result* — for the expander sketch that
    rebuilds the entire list-recoverable code each time.  The binary state
    channel ships only the report count and the packed integer state; the
    parent rebuilds each shard aggregator from the parameters it already
    holds, bit-identically.
    """
    aggregator = _ingest_span(params, values_span, chunks, span_start)
    return pack_state(child_state(aggregator))


def _unpack_span(params: PublicParams, blob: bytes) -> ServerAggregator:
    """Parent body: rebuild a worker's shard aggregator from its state blob."""
    return load_child_state(params.make_aggregator(), unpack_state(blob))


@dataclass
class EngineResult:
    """Outcome of one engine run: the merged aggregate plus run accounting."""

    aggregator: ServerAggregator
    params: PublicParams
    num_users: int
    workers: int
    num_chunks: int
    #: wall-clock seconds of the parallel encode+absorb phase
    ingest_s: float
    #: wall-clock seconds spent merging the per-worker aggregators
    merge_s: float

    @property
    def elapsed_s(self) -> float:
        return self.ingest_s + self.merge_s

    @property
    def reports_per_s(self) -> float:
        """End-to-end ingest throughput (encode + absorb + merge)."""
        return self.num_users / max(self.elapsed_s, 1e-9)

    def finalize(self):
        """Debias the merged aggregate into a fitted estimator."""
        return self.aggregator.finalize()


def encode_stream(params: PublicParams, values: Sequence[int],
                  rng: RandomState = None,
                  chunk_size: Optional[int] = None) -> Iterator[ReportBatch]:
    """The canonical serial chunk stream: one ``ReportBatch`` per plan chunk.

    This is exactly what each engine worker computes for its chunks; the
    legacy one-shot simulation paths iterate it in-process, which is why
    their outputs match the multiprocess engine bit for bit under the same
    seed.  It is also the load generator of ``repro.cli load-test``: the
    same stream shipped to a live :mod:`repro.server` ingestion service
    must produce served estimates bit-identical to :func:`run_simulation`
    with the same ``rng`` seed.  ``rng`` is consumed only to draw the
    per-chunk seeds.
    """
    values = np.asarray(values, dtype=np.int64)
    plan = make_plan(params, values.size, rng, chunk_size)
    encoder = params.make_encoder()
    for chunk in plan:
        yield encoder.encode_batch(values[chunk.start:chunk.stop],
                                   chunk.generator(),
                                   first_user_index=chunk.start)


def encode_concat(params: PublicParams, values: Sequence[int],
                  rng: RandomState = None,
                  chunk_size: Optional[int] = None) -> ReportBatch:
    """Materialize the whole canonical chunk stream as one columnar batch.

    Used by simulation paths that need the full batch at once (the
    heavy-hitters ``run()`` streams the *server* side per coordinate but
    holds every encoded report, exactly as before).
    """
    values = np.asarray(values, dtype=np.int64)
    batches = list(encode_stream(params, values, rng, chunk_size))
    if not batches:
        return ReportBatch(params.protocol, {})
    if len(batches) == 1:
        return batches[0]
    # consume=True releases each chunk column as it is copied, so the wide
    # (OUE / Bloom-bit) report matrices never exist in two full copies.
    return ReportBatch.concat(batches, consume=True)


def run_simulation(params: PublicParams, values: Sequence[int],
                   rng: RandomState = None, workers: int = 1,
                   chunk_size: Optional[int] = None,
                   result_format: str = "binary") -> EngineResult:
    """Simulate one full collection round, optionally across processes.

    Parameters
    ----------
    params:
        Public parameters of any registered wire protocol.
    values:
        ``values[i]`` is user i's true value.
    rng:
        Seed/generator consumed only to draw the per-chunk client seeds
        (the server holds no secret randomness).
    workers:
        ``1`` runs in-process; ``N > 1`` spreads the chunk plan over a
        ``ProcessPoolExecutor`` of N workers.  The finalized estimates are
        bit-identical for every value of ``workers``.
    chunk_size:
        Rows per chunk; default
        :func:`repro.engine.partition.default_chunk_size`.
    result_format:
        Worker→parent result channel: ``"binary"`` (default) ships each
        worker's exact integer state as one packed blob
        (:mod:`repro.protocol.binary`) and rebuilds the shard aggregator
        from the parent's own parameters; ``"pickle"`` is the legacy
        object channel (the aggregator pickles whole, parameters included).
        Both channels merge to bit-identical results.

    Returns
    -------
    EngineResult
        The merged aggregator plus throughput accounting; call
        ``.finalize()`` for the fitted estimator.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if result_format not in RESULT_FORMATS:
        raise ValueError(f"result_format must be one of {RESULT_FORMATS}, "
                         f"got {result_format!r}")
    values = np.asarray(values, dtype=np.int64)
    plan = make_plan(params, values.size, rng, chunk_size)

    if not plan:
        return EngineResult(aggregator=params.make_aggregator(), params=params,
                            num_users=0, workers=workers, num_chunks=0,
                            ingest_s=0.0, merge_s=0.0)

    num_tasks = min(workers, len(plan))
    if num_tasks == 1:
        start = time.perf_counter()
        aggregator = _ingest_span(params, values, plan, span_start=0)
        ingest_s = time.perf_counter() - start
        return EngineResult(aggregator=aggregator, params=params,
                            num_users=int(values.size), workers=workers,
                            num_chunks=len(plan), ingest_s=ingest_s,
                            merge_s=0.0)

    spans: List[List[Chunk]] = [list(part) for part in
                                np.array_split(np.asarray(plan, dtype=object),
                                               num_tasks)]
    worker = (_ingest_span_packed if result_format == "binary"
              else _ingest_span)
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=num_tasks) as executor:
        futures = []
        for span in spans:
            span_start, span_stop = span[0].start, span[-1].stop
            futures.append(executor.submit(
                worker, params, values[span_start:span_stop], span,
                span_start))
        results = [future.result() for future in futures]
    if result_format == "binary":
        partials = [_unpack_span(params, result) for result in results]
    else:
        partials = results
    ingest_s = time.perf_counter() - start

    start = time.perf_counter()
    merged = merge_aggregators(partials)
    merge_s = time.perf_counter() - start
    return EngineResult(aggregator=merged, params=params,
                        num_users=int(values.size), workers=workers,
                        num_chunks=len(plan), ingest_s=ingest_s,
                        merge_s=merge_s)
