"""Result object returned by heavy-hitters protocols.

Definition 3.1 asks for a list ``Est ⊆ X × R`` of elements and estimates;
:class:`HeavyHitterResult` carries that list, the resource accounting needed
for Table 1, and (when the protocol built one) the final frequency oracle so
callers can issue further queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.utils.timer import ResourceMeter


@dataclass
class HeavyHitterResult:
    """Output of one heavy-hitters protocol execution.

    Attributes
    ----------
    estimates:
        The list Est as a mapping ``{element: estimated frequency}``.
    protocol:
        Name of the protocol that produced the result.
    num_users:
        Number of participating users n.
    epsilon:
        Total per-user privacy budget spent.
    meter:
        Resource accounting (server/user time, communication, memory).
    candidates:
        The raw candidate set Ĥ before final estimation (useful for debugging
        the decode stage); equals ``list(estimates)`` when not tracked
        separately.
    oracle:
        The final frequency oracle (if the protocol keeps one), so additional
        domain elements can be queried after the fact.
    metadata:
        Free-form protocol-specific extras (parameter dumps, stage timings).
    """

    estimates: Dict[int, float]
    protocol: str
    num_users: int
    epsilon: float
    meter: ResourceMeter = field(default_factory=ResourceMeter)
    candidates: Optional[List[int]] = None
    oracle: Optional[object] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.candidates is None:
            self.candidates = list(self.estimates)

    # ----- views ---------------------------------------------------------------

    def sorted_items(self) -> List[Tuple[int, float]]:
        """Estimates sorted by decreasing estimated frequency."""
        return sorted(self.estimates.items(), key=lambda kv: -kv[1])

    def top(self, count: int) -> List[Tuple[int, float]]:
        """The ``count`` elements with the largest estimated frequencies."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.sorted_items()[:count]

    def above(self, threshold: float) -> List[Tuple[int, float]]:
        """All (element, estimate) pairs with estimate >= threshold."""
        return [(x, a) for x, a in self.sorted_items() if a >= threshold]

    def estimate_of(self, x: int) -> float:
        """Estimated frequency of x: the listed value, or 0 if x is not listed.

        This matches how a heavy-hitters output is used as a frequency oracle
        (Section 3: ``f̂(x) = a`` if (x, a) ∈ Est, else 0).
        """
        return float(self.estimates.get(int(x), 0.0))

    def estimate_many(self, xs: Iterable[int],
                      use_oracle: bool = False) -> np.ndarray:
        """Vectorized frequency estimates for a batch of queries.

        With ``use_oracle=False`` (default) the listed value (or 0) is
        returned for every query, matching :meth:`estimate_of`.  With
        ``use_oracle=True`` and a retained final frequency oracle, unlisted
        queries are answered through the oracle's batch ``estimate_many``
        path instead of 0.
        """
        xs = np.asarray(list(xs) if not isinstance(xs, np.ndarray) else xs,
                        dtype=np.int64)
        if xs.size == 0:
            return np.zeros(0)
        if use_oracle and self.oracle is not None:
            listed = np.array([x in self.estimates for x in xs.tolist()])
            out = np.asarray(self.oracle.estimate_many(xs), dtype=float)
            if listed.any():
                out[listed] = [self.estimates[int(x)] for x in xs[listed]]
            return out
        return np.array([self.estimates.get(int(x), 0.0) for x in xs.tolist()],
                        dtype=float)

    @property
    def list_size(self) -> int:
        return len(self.estimates)

    def communication_bits_per_user(self) -> float:
        """Per-user communication, from the resource meter."""
        if self.num_users <= 0:
            return float("nan")
        return self.meter.communication_bits / self.num_users

    def as_dict(self) -> Dict[str, object]:
        """Flatten for benchmark reporting."""
        out = {
            "protocol": self.protocol,
            "num_users": self.num_users,
            "epsilon": self.epsilon,
            "list_size": self.list_size,
        }
        out.update(self.meter.as_dict())
        return out
