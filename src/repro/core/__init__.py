"""The paper's primary contribution: the ``PrivateExpanderSketch`` protocol.

* :mod:`repro.core.params` — derivation of the protocol parameters
  (M, B, Y, ℓ, thresholds) from (n, |X|, ε, β), following the formulas in
  Algorithm PrivateExpanderSketch with practical constants.
* :mod:`repro.core.protocol` — the protocol abstraction shared with all
  baselines (run a distributed database through local randomizers, account for
  the Table 1 resource columns).
* :mod:`repro.core.results` — the result object (Definition 3.1's ``Est`` list
  plus resource accounting).
* :mod:`repro.core.heavy_hitters` — Algorithm PrivateExpanderSketch itself.
"""

from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.core.params import ProtocolParameters
from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult

__all__ = [
    "ProtocolParameters",
    "HeavyHitterProtocol",
    "HeavyHitterResult",
    "PrivateExpanderSketch",
]
