"""Protocol abstraction shared by PrivateExpanderSketch and every baseline.

A heavy-hitters protocol in the (non-interactive) local model is, per
Definitions 2.2/2.3, a collection of per-user local randomizers plus a
server-side aggregation.  :class:`HeavyHitterProtocol` fixes the common
interface — ``run(values) -> HeavyHitterResult`` — and provides shared helpers
(user partitioning, input validation, resource accounting) so that the
Table 1 benchmark can treat all protocols uniformly.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.results import HeavyHitterResult
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int


class HeavyHitterProtocol(abc.ABC):
    """Base class for non-interactive LDP heavy-hitters protocols."""

    #: short machine-readable protocol name (used in benchmark tables)
    name: str = "abstract"

    def __init__(self, domain_size: int, epsilon: float) -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)

    # ----- required interface ---------------------------------------------------

    @abc.abstractmethod
    def run(self, values: Sequence[int], rng: RandomState = None,
            chunk_size: int | None = None) -> HeavyHitterResult:
        """Execute the protocol on the distributed database ``values``.

        ``values[i]`` is user i's private input.  The returned result contains
        the Est list of Definition 3.1 along with resource accounting.

        Implementations that simulate through the wire API encode the
        engine's canonical chunk stream (:mod:`repro.engine`); ``chunk_size``
        overrides the canonical chunking (forwarded to inner oracles by
        reduction-style baselines) and must match between two runs being
        compared for bit-identical output.
        """

    # ----- shared helpers ----------------------------------------------------------

    def _validate_values(self, values: Sequence[int]) -> np.ndarray:
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("values must be a one-dimensional sequence")
        if arr.size == 0:
            raise ValueError("the database must contain at least one user")
        if arr.min() < 0 or arr.max() >= self.domain_size:
            raise ValueError("values outside the declared domain")
        return arr

    @staticmethod
    def partition_users(num_users: int, num_groups: int,
                        rng: RandomState = None) -> np.ndarray:
        """Random partition of [n] into ``num_groups`` sets (the paper's I_1..I_M).

        Returns an array ``assignment`` with ``assignment[i]`` the group of
        user i.  Uses a random permutation split into near-equal consecutive
        blocks, so group sizes differ by at most one.
        """
        check_positive_int(num_users, "num_users")
        check_positive_int(num_groups, "num_groups")
        gen = as_generator(rng)
        permuted = gen.permutation(num_users)
        assignment = np.empty(num_users, dtype=np.int64)
        for group, block in enumerate(np.array_split(permuted, num_groups)):
            assignment[block] = group
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(domain_size={self.domain_size}, "
                f"epsilon={self.epsilon})")
