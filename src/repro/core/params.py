"""Parameter derivation for Algorithm PrivateExpanderSketch.

The paper sets (for universal constants C_M, C_Y, C_ℓ, C_g, C_f):

* ``M  = C_M · log|X| / log log|X|``  — number of coordinates,
* ``Y  = log^{C_Y} |X|``              — range of the per-coordinate hashes,
* ``ℓ  = C_ℓ · log|X|``               — per-(coordinate, bucket) list length,
* ``B  = Θ(ε sqrt(n) / log^{3/2}|X|)`` — number of partition buckets (from the
  proof of Event E1),
* detection threshold ``C_f · (log log|X| / ε) · sqrt(n / log|X|)``.

The asymptotic constants are unspecified; :meth:`ProtocolParameters.derive`
instantiates them with practical values (every field can be overridden), and
records both the paper-formula value and the value actually used so that
experiments can report the mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.utils.validation import (
    check_epsilon,
    check_positive_int,
    check_probability,
)


@dataclass(frozen=True)
class ProtocolParameters:
    """Concrete parameters of one PrivateExpanderSketch execution.

    Attributes
    ----------
    domain_size, num_users, epsilon, beta:
        Problem parameters (|X|, n, ε, failure probability β).
    num_coordinates:
        M — number of independent coordinates / user groups.
    num_buckets:
        B — range of the partition hash g.
    hash_range:
        Y — range of the per-coordinate hashes h_m.
    list_size:
        ℓ — maximum number of (y, z) pairs kept per (coordinate, bucket).
    expander_degree:
        d — degree of the neighbourhood expander used by the code.
    code_rate:
        Rate of the outer Reed-Solomon code (message/codeword length ratio).
    alpha:
        Fraction of coordinates a heavy hitter may lose and still be decoded.
    threshold_std:
        Detection threshold expressed in standard deviations of the
        per-coordinate oracle noise (the practical counterpart of the C_f
        constant).
    partition_independence:
        Independence of the partition hash g (the paper's C_g · log|X|).
    oracle_randomizer:
        Inner randomizer of the per-coordinate frequency oracles.
    final_oracle_repetitions / final_oracle_buckets:
        Configuration of the step-5 Hashtogram over the original domain.
    """

    domain_size: int
    num_users: int
    epsilon: float
    beta: float
    num_coordinates: int
    num_buckets: int
    hash_range: int
    list_size: int
    expander_degree: int = 2
    code_rate: float = 0.5
    alpha: float = 0.25
    threshold_std: float = 2.0
    partition_independence: int = 8
    oracle_randomizer: str = "hadamard"
    final_oracle_repetitions: int = 5
    final_oracle_buckets: Optional[int] = None
    notes: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.domain_size, "domain_size")
        check_positive_int(self.num_users, "num_users")
        check_epsilon(self.epsilon)
        check_probability(self.beta, "beta", allow_zero=False, allow_one=False)
        check_positive_int(self.num_coordinates, "num_coordinates")
        check_positive_int(self.num_buckets, "num_buckets")
        check_positive_int(self.hash_range, "hash_range")
        check_positive_int(self.list_size, "list_size")
        check_positive_int(self.expander_degree, "expander_degree")
        if not 0 < self.code_rate <= 1:
            raise ValueError("code_rate must lie in (0, 1]")
        check_probability(self.alpha, "alpha", allow_zero=True, allow_one=False)

    # ----- derivation -------------------------------------------------------------

    @classmethod
    def derive(cls, num_users: int, domain_size: int, epsilon: float, beta: float,
               **overrides) -> "ProtocolParameters":
        """Derive practical parameters from (n, |X|, ε, β).

        Every keyword in ``overrides`` replaces the derived value of the field
        with the same name, so experiments can sweep a single knob while
        keeping the rest of the derivation.
        """
        check_positive_int(num_users, "num_users")
        check_positive_int(domain_size, "domain_size")
        check_epsilon(epsilon)
        check_probability(beta, "beta", allow_zero=False, allow_one=False)

        log_domain = max(math.log2(domain_size), 2.0)
        loglog_domain = max(math.log2(log_domain), 1.0)

        # M = C_M log|X| / loglog|X| with C_M chosen so that laptop-scale
        # domains land on a single-digit number of coordinates.  The lower
        # clamp of 6 keeps the outer code's field (p >= |X|^{1/(rate*M)})
        # small enough that the per-coordinate oracle domain stays enumerable.
        paper_m = 2.0 * log_domain / loglog_domain
        num_coordinates = int(min(max(round(paper_m), 6), 16))

        # Y = polylog(|X|).  Kept at a small power of two: the per-coordinate
        # oracle domain is B * Y * (p * Y^d) and Y enters with exponent d+1.
        hash_range = 16 if log_domain <= 40 else 32

        # B = Θ(ε sqrt(n) / log^{3/2}|X|), clamped to a sane range.
        paper_b = epsilon * math.sqrt(num_users) / (log_domain ** 1.5)
        num_buckets = int(min(max(round(paper_b), 2), 64))

        # ℓ = C_ℓ log|X|.
        list_size = int(max(8, round(2 * log_domain)))

        params = cls(
            domain_size=domain_size,
            num_users=num_users,
            epsilon=epsilon,
            beta=beta,
            num_coordinates=num_coordinates,
            num_buckets=num_buckets,
            hash_range=hash_range,
            list_size=list_size,
            notes={
                "paper_num_coordinates": paper_m,
                "paper_num_buckets": paper_b,
            },
        )
        if overrides:
            unknown = set(overrides) - set(params.__dataclass_fields__)
            if unknown:
                raise TypeError(f"unknown parameter overrides: {sorted(unknown)}")
            params = replace(params, **overrides)
        return params

    # ----- derived quantities -------------------------------------------------------

    @property
    def epsilon_per_stage(self) -> float:
        """Privacy budget of each of the two stages (ε/2 each, as in the paper)."""
        return self.epsilon / 2.0

    @property
    def num_components(self) -> int:
        """Number of components of the packed symbol z reported per user.

        The implementation reports one uniformly chosen component of
        ``(chunk, neighbour hashes)`` per user — the chunk plus ``d``
        neighbour hash values — rather than the full packed symbol, so the
        per-coordinate oracle domain stays enumerable.  See DESIGN.md.
        """
        return self.expander_degree + 1

    def detection_threshold(self) -> float:
        """The paper-formula detection threshold C_f·(loglog|X|/ε)·sqrt(n/log|X|)."""
        log_domain = max(math.log2(self.domain_size), 2.0)
        loglog_domain = max(math.log2(log_domain), 1.0)
        return loglog_domain / self.epsilon * math.sqrt(self.num_users / log_domain)

    def theoretical_error(self, constant: float = 1.0) -> float:
        """The Theorem 3.13 error bound ``(C/ε) sqrt(n log(|X|/β))``."""
        return (constant / self.epsilon
                * math.sqrt(self.num_users * math.log(self.domain_size / self.beta)))

    def describe(self) -> Dict[str, float]:
        """Flat dictionary of all parameters (for logging and EXPERIMENTS.md)."""
        out = {
            "domain_size": self.domain_size,
            "num_users": self.num_users,
            "epsilon": self.epsilon,
            "beta": self.beta,
            "num_coordinates": self.num_coordinates,
            "num_buckets": self.num_buckets,
            "hash_range": self.hash_range,
            "list_size": self.list_size,
            "expander_degree": self.expander_degree,
            "code_rate": self.code_rate,
            "alpha": self.alpha,
            "threshold_std": self.threshold_std,
        }
        out.update(self.notes)
        return out
