"""Algorithm PrivateExpanderSketch (Section 3.3): optimal-error LDP heavy hitters.

The execution follows the paper's algorithm box step by step:

Public randomness
    A round-robin partition of the users into M groups I_1, ..., I_M, pairwise
    independent hashes ``h_1, ..., h_M : X -> [Y]``, and an
    O(log|X|)-wise independent partition hash ``g : X -> [B]``.  The
    unique-list-recoverable code (Enc, Dec) of Theorem 3.6 is built on the
    h_m's.  All of it is packaged as serializable wire parameters
    (:class:`~repro.protocol.heavy_hitters.ExpanderSketchParams`).

Step 1
    For every coordinate m, the users in I_m run a frequency oracle with
    privacy ε/2 over the derived values ``(g(x), h_m(x), E~nc(x)_m)``.  The
    oracle is the small-domain Hashtogram variant (Hadamard response +
    fast Walsh-Hadamard decoding), so the server obtains estimates
    ``f̂_{S_m}(b, y, z)`` for every cell.

Steps 2-3
    For every (m, b, y) the server takes the arg-max over z and keeps the pair
    (y, z) if its estimated frequency clears the detection threshold, building
    the lists L^b_m (at most ℓ entries each, largest estimates first).

Step 4
    For every partition bucket b, the list-recoverable decoder returns the
    candidate set Ĥ^b; Ĥ is their union.

Step 5
    A second Hashtogram with privacy ε/2 over the *original* domain estimates
    the frequency of every candidate; the output is Est = {(x, f̂(x)) : x ∈ Ĥ}.

Each user participates in exactly one coordinate oracle and the final oracle,
spending ε/2 + ε/2 = ε, so the protocol is ε-LDP exactly as in the paper.

:meth:`PrivateExpanderSketch.run` is the one-shot simulation entry point: it
encodes every user through the stateless wire encoder
(``encode_batch``), then streams the server side one coordinate at a time so
its peak memory stays a single coordinate oracle.  A sharded deployment
instead uses :class:`~repro.protocol.heavy_hitters.ExpanderSketchAggregator`
(``absorb_batch`` on each shard, ``merge``, ``finalize``), which reproduces
``run()``'s estimates bit for bit from the same encoded reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.params import ProtocolParameters
from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult
from repro.engine.engine import encode_concat
from repro.frequency.hashtogram import HashtogramOracle
from repro.protocol.heavy_hitters import (
    ExpanderSketchParams,
    append_coordinate_lists,
    decode_candidate_lists,
    final_subbatch,
    stage1_subbatch,
)
from repro.utils.rng import RandomState, as_generator
from repro.utils.timer import ResourceMeter, Timer
from repro.utils.validation import check_probability


class PrivateExpanderSketch(HeavyHitterProtocol):
    """The paper's heavy-hitters protocol with optimal worst-case error.

    Parameters
    ----------
    domain_size:
        Size of the input domain |X| (inputs are integers in [0, |X|)).
    epsilon:
        Total per-user privacy budget (split ε/2 + ε/2 across the two stages).
    beta:
        Target failure probability (drives the parameter derivation only).
    params:
        Fully explicit :class:`ProtocolParameters`; if omitted they are derived
        from (n, |X|, ε, β) at :meth:`run` time.
    small_domain_cutoff:
        For domains no larger than this the protocol falls back to querying a
        single frequency oracle on every domain element, as the paper suggests
        for the regime n > |X| (Section 3.3, remark before Theorem 3.13).
        Set to 0 to disable the fallback.
    max_cells:
        Safety cap on the per-coordinate oracle domain B*Y*Z; exceeding it
        raises with a hint to shrink Y or the expander degree.
    **overrides:
        Forwarded to :meth:`ProtocolParameters.derive`.
    """

    name = "private_expander_sketch"

    def __init__(self, domain_size: int, epsilon: float, beta: float = 0.05,
                 params: ProtocolParameters | None = None,
                 small_domain_cutoff: int = 1024,
                 max_cells: int = 1 << 24,
                 **overrides) -> None:
        super().__init__(domain_size, epsilon)
        self.beta = check_probability(beta, "beta", allow_zero=False, allow_one=False)
        self._explicit_params = params
        self._overrides = overrides
        self.small_domain_cutoff = int(small_domain_cutoff)
        self.max_cells = int(max_cells)

    # ----- parameterisation ---------------------------------------------------------

    def parameters_for(self, num_users: int) -> ProtocolParameters:
        """The parameters used for a database with ``num_users`` users."""
        if self._explicit_params is not None:
            return self._explicit_params
        return ProtocolParameters.derive(num_users, self.domain_size, self.epsilon,
                                         self.beta, **self._overrides)

    def public_params(self, num_users: int,
                      rng: RandomState = None) -> ExpanderSketchParams:
        """Sample the serializable wire parameters for a ``num_users`` run."""
        return ExpanderSketchParams.create(num_users, self.domain_size,
                                           self.epsilon,
                                           self.parameters_for(num_users),
                                           rng=rng)

    # ----- execution -------------------------------------------------------------------

    def run(self, values: Sequence[int], rng: RandomState = None,
            chunk_size: int | None = None) -> HeavyHitterResult:
        gen = as_generator(rng)
        values = self._validate_values(values)
        num_users = int(values.size)
        meter = ResourceMeter()

        if 0 < self.small_domain_cutoff >= self.domain_size:
            return self._run_small_domain(values, gen, meter)

        # ----- public randomness -----------------------------------------------------
        with Timer() as setup_timer:
            wire = self.public_params(num_users, rng=gen)
        params = wire.params
        meter.add_public_randomness(wire.public_randomness_bits)
        meter.bump("setup_time_s", setup_timer.elapsed)

        num_cells = wire.num_cells
        if num_cells > self.max_cells:
            raise ValueError(
                f"per-coordinate oracle domain has {num_cells} cells "
                f"(> max_cells={self.max_cells}); reduce hash_range or "
                f"expander_degree, or increase num_coordinates")

        # ----- client side: every user encodes one wire report -------------------------
        # The engine's canonical chunk stream (per-chunk seeds pre-drawn from
        # `gen`) makes this encoding bit-identical to a multiprocess
        # `repro.engine.run_simulation` run with the same seed.
        with Timer() as user_timer:
            batch = encode_concat(wire, values, gen, chunk_size=chunk_size)
        meter.add_user_time(user_timer.elapsed)
        meter.add_communication(int(wire.report_bits * num_users))

        # ----- steps 1-3: per-coordinate ingestion and the lists L^b_m -----------------
        # The one-shot simulation streams one coordinate at a time and keeps
        # only the (y, z) lists, so its working memory never holds more than a
        # single coordinate aggregator (plus the final-stage Hashtogram
        # below).  Sharded deployments use ExpanderSketchAggregator instead.
        coordinates = np.asarray(batch.columns["coordinate"], dtype=np.int64)
        group_sizes: List[int] = []
        lists: List[List[List[tuple]]] = [
            [[] for _ in range(params.num_coordinates)]
            for _ in range(params.num_buckets)]
        peak_oracle_state = 0
        for m in range(params.num_coordinates):
            aggregator = wire.stage1.make_aggregator()
            with Timer() as ingest_timer:
                aggregator.absorb_batch(
                    stage1_subbatch(batch, coordinates == m,
                                    wire.stage1.protocol))
            meter.add_server_time(ingest_timer.elapsed)
            group_sizes.append(aggregator.num_reports)
            peak_oracle_state = max(peak_oracle_state, aggregator.state_size)
            with Timer() as list_timer:
                append_coordinate_lists(aggregator.finalize(),
                                        aggregator.num_reports, m, wire.code,
                                        params, lists)
            meter.add_server_time(list_timer.elapsed)

        # ----- step 4: decode every bucket --------------------------------------------------
        with Timer() as decode_timer:
            candidates = decode_candidate_lists(wire.code, lists,
                                                params.num_buckets)
        meter.add_server_time(decode_timer.elapsed)

        # ----- step 5: final frequency estimates --------------------------------------------
        with Timer() as final_timer:
            final_aggregator = wire.final.make_aggregator()
            final_aggregator.absorb_batch(
                final_subbatch(batch, wire.final.protocol))
            final_oracle: HashtogramOracle = final_aggregator.finalize()
        meter.add_server_time(final_timer.elapsed)

        with Timer() as estimate_timer:
            estimates: Dict[int, float] = {}
            if candidates:
                estimated = final_oracle.estimate_many(candidates)
                estimates = {int(x): float(a)
                             for x, a in zip(candidates, estimated, strict=True)}
        meter.add_server_time(estimate_timer.elapsed)

        meter.observe_server_memory(
            peak_oracle_state
            + final_aggregator.state_size
            + sum(len(per_coord) * 2
                  for per_bucket in lists for per_coord in per_bucket))

        return HeavyHitterResult(
            estimates=estimates,
            protocol=self.name,
            num_users=num_users,
            epsilon=self.epsilon,
            meter=meter,
            candidates=candidates,
            oracle=final_oracle,
            metadata={"parameters": params.describe(),
                      "group_sizes": group_sizes,
                      "num_cells": num_cells,
                      "report_bits": wire.report_bits,
                      "server_state_size": (peak_oracle_state
                                            + final_aggregator.state_size),
                      "list_sizes": [len(per_coord)
                                     for per_bucket in lists
                                     for per_coord in per_bucket]},
        )

    # ----- internals ----------------------------------------------------------------------

    def _run_small_domain(self, values: np.ndarray, gen: np.random.Generator,
                          meter: ResourceMeter) -> HeavyHitterResult:
        """Small-domain fallback: query a single frequency oracle on every element.

        This is the paper's observation that for n > |X| one can apply the
        frequency oracle of Theorem 3.7 to every item of X and keep the same
        guarantees.
        """
        with Timer() as user_timer:
            oracle = HashtogramOracle(self.domain_size, self.epsilon)
            oracle.collect(values, gen)
        meter.add_user_time(user_timer.elapsed)
        meter.add_communication(int(oracle.report_bits * values.size))
        meter.add_public_randomness(oracle.public_randomness_bits)

        with Timer() as server_timer:
            all_estimates = oracle.estimate_many(np.arange(self.domain_size))
            # Keep the O(n / Delta)-sized head of the histogram: elements whose
            # estimate clears the oracle's own noise floor.
            noise_floor = oracle.expected_error(beta=self.beta)
            estimates = {int(x): float(a) for x, a in enumerate(all_estimates)
                         if a >= noise_floor}
        meter.add_server_time(server_timer.elapsed)
        meter.observe_server_memory(oracle.server_state_size)

        return HeavyHitterResult(
            estimates=estimates,
            protocol=self.name,
            num_users=int(values.size),
            epsilon=self.epsilon,
            meter=meter,
            candidates=list(estimates),
            oracle=oracle,
            metadata={"mode": "small_domain_enumeration",
                      "noise_floor": float(noise_floor),
                      "report_bits": float(oracle.report_bits),
                      "server_state_size": int(oracle.server_state_size)},
        )
