"""Algorithm PrivateExpanderSketch (Section 3.3): optimal-error LDP heavy hitters.

The execution follows the paper's algorithm box step by step:

Public randomness
    A random partition of the users into M groups I_1, ..., I_M, pairwise
    independent hashes ``h_1, ..., h_M : X -> [Y]``, and an
    O(log|X|)-wise independent partition hash ``g : X -> [B]``.  The
    unique-list-recoverable code (Enc, Dec) of Theorem 3.6 is built on the
    h_m's.

Step 1
    For every coordinate m, the users in I_m run a frequency oracle with
    privacy ε/2 over the derived values ``(g(x), h_m(x), E~nc(x)_m)``.  The
    oracle is the small-domain Hashtogram variant (Hadamard response +
    fast Walsh-Hadamard decoding), so the server obtains estimates
    ``f̂_{S_m}(b, y, z)`` for every cell.

Steps 2-3
    For every (m, b, y) the server takes the arg-max over z and keeps the pair
    (y, z) if its estimated frequency clears the detection threshold, building
    the lists L^b_m (at most ℓ entries each, largest estimates first).

Step 4
    For every partition bucket b, the list-recoverable decoder returns the
    candidate set Ĥ^b; Ĥ is their union.

Step 5
    A second Hashtogram with privacy ε/2 over the *original* domain estimates
    the frequency of every candidate; the output is Est = {(x, f̂(x)) : x ∈ Ĥ}.

Each user participates in exactly one coordinate oracle and the final oracle,
spending ε/2 + ε/2 = ε, so the protocol is ε-LDP exactly as in the paper.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.codes.list_recoverable import ListRecoveryParameters, UniqueListRecoverableCode
from repro.core.params import ProtocolParameters
from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.frequency.hashtogram import HashtogramOracle
from repro.hashing.kwise import KWiseHashFamily
from repro.utils.rng import RandomState, as_generator
from repro.utils.timer import ResourceMeter, Timer
from repro.utils.validation import check_probability


class PrivateExpanderSketch(HeavyHitterProtocol):
    """The paper's heavy-hitters protocol with optimal worst-case error.

    Parameters
    ----------
    domain_size:
        Size of the input domain |X| (inputs are integers in [0, |X|)).
    epsilon:
        Total per-user privacy budget (split ε/2 + ε/2 across the two stages).
    beta:
        Target failure probability (drives the parameter derivation only).
    params:
        Fully explicit :class:`ProtocolParameters`; if omitted they are derived
        from (n, |X|, ε, β) at :meth:`run` time.
    small_domain_cutoff:
        For domains no larger than this the protocol falls back to querying a
        single frequency oracle on every domain element, as the paper suggests
        for the regime n > |X| (Section 3.3, remark before Theorem 3.13).
        Set to 0 to disable the fallback.
    max_cells:
        Safety cap on the per-coordinate oracle domain B*Y*Z; exceeding it
        raises with a hint to shrink Y or the expander degree.
    **overrides:
        Forwarded to :meth:`ProtocolParameters.derive`.
    """

    name = "private_expander_sketch"

    def __init__(self, domain_size: int, epsilon: float, beta: float = 0.05,
                 params: ProtocolParameters | None = None,
                 small_domain_cutoff: int = 1024,
                 max_cells: int = 1 << 24,
                 **overrides) -> None:
        super().__init__(domain_size, epsilon)
        self.beta = check_probability(beta, "beta", allow_zero=False, allow_one=False)
        self._explicit_params = params
        self._overrides = overrides
        self.small_domain_cutoff = int(small_domain_cutoff)
        self.max_cells = int(max_cells)

    # ----- parameterisation ---------------------------------------------------------

    def parameters_for(self, num_users: int) -> ProtocolParameters:
        """The parameters used for a database with ``num_users`` users."""
        if self._explicit_params is not None:
            return self._explicit_params
        return ProtocolParameters.derive(num_users, self.domain_size, self.epsilon,
                                         self.beta, **self._overrides)

    # ----- execution -------------------------------------------------------------------

    def run(self, values: Sequence[int], rng: RandomState = None) -> HeavyHitterResult:
        gen = as_generator(rng)
        values = self._validate_values(values)
        num_users = int(values.size)
        meter = ResourceMeter()

        if 0 < self.small_domain_cutoff >= self.domain_size:
            return self._run_small_domain(values, gen, meter)

        params = self.parameters_for(num_users)

        # ----- public randomness -----------------------------------------------------
        with Timer() as setup_timer:
            partition_family = KWiseHashFamily.create(
                self.domain_size, params.num_buckets,
                independence=params.partition_independence)
            partition_hash = partition_family.sample(gen)
            coordinate_family = KWiseHashFamily.create(
                self.domain_size, params.hash_range, independence=2)
            coordinate_hashes = coordinate_family.sample_many(params.num_coordinates, gen)
            code = UniqueListRecoverableCode(
                ListRecoveryParameters(
                    domain_size=self.domain_size,
                    num_coordinates=params.num_coordinates,
                    hash_range=params.hash_range,
                    list_size=params.list_size,
                    alpha=params.alpha,
                    expander_degree=params.expander_degree,
                    max_output_size=4 * params.list_size,
                ),
                coordinate_hashes,
                rng=gen,
                rate=params.code_rate,
            )
            assignment = self.partition_users(num_users, params.num_coordinates, gen)
        meter.add_public_randomness(
            partition_hash.description_bits
            + sum(h.description_bits for h in coordinate_hashes))
        meter.bump("setup_time_s", setup_timer.elapsed)

        num_cells = (params.num_buckets * params.hash_range * code.z_alphabet_size)
        if num_cells > self.max_cells:
            raise ValueError(
                f"per-coordinate oracle domain has {num_cells} cells "
                f"(> max_cells={self.max_cells}); reduce hash_range or "
                f"expander_degree, or increase num_coordinates")

        # ----- steps 1-3: per-coordinate oracles and their lists L^b_m -------------------
        # The server processes one coordinate at a time and keeps only the
        # (y, z) lists, so its working memory never holds more than a single
        # coordinate oracle (plus the final-stage Hashtogram below).
        group_sizes: List[int] = []
        lists: List[List[List[tuple]]] = [
            [[] for _ in range(params.num_coordinates)]
            for _ in range(params.num_buckets)]
        peak_oracle_state = 0
        with Timer() as derive_timer:
            partition_values = np.asarray(partition_hash(values))
            chunks = code.outer_code.encode_batch(values)  # (n, M)
        meter.add_user_time(derive_timer.elapsed)
        for m in range(params.num_coordinates):
            members = values[assignment == m]
            member_chunks = chunks[assignment == m, m]
            member_buckets = partition_values[assignment == m]
            group_sizes.append(int(members.size))
            oracle = ExplicitHistogramOracle(num_cells, params.epsilon_per_stage,
                                             randomizer=params.oracle_randomizer)
            with Timer() as user_timer:
                cells = self._derive_cells(members, member_buckets, member_chunks,
                                           m, code, params)
                oracle.collect(cells, gen)
            meter.add_user_time(user_timer.elapsed)
            meter.add_communication(int(oracle.report_bits * members.size))
            peak_oracle_state = max(peak_oracle_state, oracle.server_state_size)
            with Timer() as list_timer:
                self._append_coordinate_lists(oracle, int(members.size), m, code,
                                              params, lists)
            meter.add_server_time(list_timer.elapsed)

        # ----- step 4: decode every bucket --------------------------------------------------
        with Timer() as decode_timer:
            candidates: List[int] = []
            seen = set()
            for bucket in range(params.num_buckets):
                for candidate in code.decode(lists[bucket]):
                    if candidate not in seen:
                        seen.add(candidate)
                        candidates.append(candidate)
        meter.add_server_time(decode_timer.elapsed)

        # ----- step 5: final frequency estimates --------------------------------------------
        with Timer() as final_timer:
            final_oracle = HashtogramOracle(
                self.domain_size, params.epsilon_per_stage,
                num_repetitions=params.final_oracle_repetitions,
                num_buckets=params.final_oracle_buckets)
            final_oracle.collect(values, gen)
        meter.add_user_time(final_timer.elapsed)
        meter.add_communication(int(final_oracle.report_bits * num_users))
        meter.add_public_randomness(final_oracle.public_randomness_bits)

        with Timer() as estimate_timer:
            estimates: Dict[int, float] = {}
            if candidates:
                estimated = final_oracle.estimate_many(candidates)
                estimates = {int(x): float(a) for x, a in zip(candidates, estimated)}
        meter.add_server_time(estimate_timer.elapsed)

        meter.observe_server_memory(
            peak_oracle_state
            + final_oracle.server_state_size
            + sum(len(per_coord) * 2
                  for per_bucket in lists for per_coord in per_bucket))

        return HeavyHitterResult(
            estimates=estimates,
            protocol=self.name,
            num_users=num_users,
            epsilon=self.epsilon,
            meter=meter,
            candidates=candidates,
            oracle=final_oracle,
            metadata={"parameters": params.describe(),
                      "group_sizes": group_sizes,
                      "num_cells": num_cells,
                      "list_sizes": [len(per_coord)
                                     for per_bucket in lists
                                     for per_coord in per_bucket]},
        )

    # ----- internals ----------------------------------------------------------------------

    @staticmethod
    def _derive_cells(members: np.ndarray, buckets: np.ndarray, chunks: np.ndarray,
                      coordinate: int, code: UniqueListRecoverableCode,
                      params: ProtocolParameters) -> np.ndarray:
        """Map each member's value to its oracle cell ((b, y, z) flattened)."""
        if members.size == 0:
            return members
        hash_range = params.hash_range
        y_values = np.asarray(code.hashes[coordinate](members))
        # Packed z = chunk + prime * (neighbour hashes in base Y), matching
        # UniqueListRecoverableCode._pack_z.
        neighbor_part = np.zeros(members.size, dtype=np.int64)
        for neighbor in reversed(code.expander.neighbors(coordinate)):
            neighbor_part = (neighbor_part * hash_range
                             + np.asarray(code.hashes[neighbor](members)))
        z_values = neighbor_part * code.outer_code.prime + chunks
        cells = (buckets * hash_range + y_values) * code.z_alphabet_size + z_values
        return cells.astype(np.int64)

    @staticmethod
    def _append_coordinate_lists(oracle: ExplicitHistogramOracle, group_size: int,
                                 coordinate: int, code: UniqueListRecoverableCode,
                                 params: ProtocolParameters,
                                 lists: List[List[List[tuple]]]) -> None:
        """Steps 2-3 for one coordinate: fill ``lists[b][coordinate]`` for every bucket.

        For every (b, y) the arg-max over z is taken (step 3a); the pair is kept
        if its estimate clears the detection threshold, largest estimates first,
        up to the list budget ℓ (step 3b).
        """
        num_buckets = params.num_buckets
        hash_range = params.hash_range
        z_size = code.z_alphabet_size
        cell_std = math.sqrt(max(group_size, 1) * oracle.estimator_variance_per_user)
        threshold = params.threshold_std * cell_std
        histogram = oracle.histogram().reshape(num_buckets, hash_range, z_size)
        best_z = histogram.argmax(axis=2)
        best_value = np.take_along_axis(histogram, best_z[:, :, None], axis=2)[:, :, 0]
        for bucket in range(num_buckets):
            order = np.argsort(-best_value[bucket])
            entries = []
            for y in order:
                value = best_value[bucket, y]
                if value < threshold:
                    break
                entries.append((int(y), int(best_z[bucket, y])))
                if len(entries) >= params.list_size:
                    break
            lists[bucket][coordinate] = entries

    def _run_small_domain(self, values: np.ndarray, gen: np.random.Generator,
                          meter: ResourceMeter) -> HeavyHitterResult:
        """Small-domain fallback: query a single frequency oracle on every element.

        This is the paper's observation that for n > |X| one can apply the
        frequency oracle of Theorem 3.7 to every item of X and keep the same
        guarantees.
        """
        with Timer() as user_timer:
            oracle = HashtogramOracle(self.domain_size, self.epsilon)
            oracle.collect(values, gen)
        meter.add_user_time(user_timer.elapsed)
        meter.add_communication(int(oracle.report_bits * values.size))
        meter.add_public_randomness(oracle.public_randomness_bits)

        with Timer() as server_timer:
            all_estimates = oracle.estimate_many(np.arange(self.domain_size))
            # Keep the O(n / Delta)-sized head of the histogram: elements whose
            # estimate clears the oracle's own noise floor.
            noise_floor = oracle.expected_error(beta=self.beta)
            estimates = {int(x): float(a) for x, a in enumerate(all_estimates)
                         if a >= noise_floor}
        meter.add_server_time(server_timer.elapsed)
        meter.observe_server_memory(oracle.server_state_size)

        return HeavyHitterResult(
            estimates=estimates,
            protocol=self.name,
            num_users=int(values.size),
            epsilon=self.epsilon,
            meter=meter,
            candidates=list(estimates),
            oracle=oracle,
            metadata={"mode": "small_domain_enumeration",
                      "noise_floor": float(noise_floor)},
        )
