"""Reed-Solomon codes over GF(p) with a Berlekamp-Welch decoder.

Role in the reproduction
------------------------
Appendix B of the paper requires "a (standard) error-correcting code
(enc, dec) with constant rate that can correct an Ω(1)-fraction of errors"
whose codeword is split into ``M`` chunks.  We use a Reed-Solomon code with
one chunk per coordinate: each chunk is a single field symbol, the rate is
``k/M`` (a constant, 1/2 by default) and Berlekamp-Welch decoding corrects any
``(M - k) / 2`` symbol errors, i.e. a constant fraction of the coordinates.
This substitutes for the linear-time Spielman/Guruswami codes cited by the
paper; only polynomial-time decoding matters for the statistical claims being
reproduced (see DESIGN.md, substitution 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.codes.gf import PrimeField
from repro.hashing.primes import next_prime
from repro.utils.bits import int_to_symbols, symbols_to_int
from repro.utils.validation import check_positive_int


class DecodingFailure(Exception):
    """Raised when the decoder cannot produce a codeword within the error budget."""


@dataclass(frozen=True)
class ReedSolomonCode:
    """An [M, k] Reed-Solomon code over GF(p).

    Parameters
    ----------
    message_length:
        Number of message symbols k.
    codeword_length:
        Number of codeword symbols M (evaluation points); requires M <= p.
    prime:
        Field size p; every symbol lies in [0, p).

    The code corrects up to ``(M - k) // 2`` erroneous symbols.
    """

    message_length: int
    codeword_length: int
    prime: int

    def __post_init__(self) -> None:
        check_positive_int(self.message_length, "message_length")
        check_positive_int(self.codeword_length, "codeword_length")
        if self.codeword_length < self.message_length:
            raise ValueError("codeword_length must be >= message_length")
        if self.codeword_length > self.prime:
            raise ValueError("codeword_length cannot exceed the field size")

    # ----- constructors ------------------------------------------------------

    @classmethod
    def for_domain(cls, domain_size: int, num_chunks: int, rate: float = 0.5
                   ) -> "ReedSolomonCode":
        """Build a code able to encode any element of ``[0, domain_size)``
        into ``num_chunks`` symbols at (approximately) the requested rate.

        The message length is ``ceil(rate * num_chunks)`` and the field size is
        the smallest prime large enough that ``domain_size <= p^k`` and
        ``p >= num_chunks``.
        """
        check_positive_int(domain_size, "domain_size")
        check_positive_int(num_chunks, "num_chunks")
        if not 0 < rate <= 1:
            raise ValueError("rate must lie in (0, 1]")
        k = max(int(rate * num_chunks), 1)
        # Smallest prime p with p^k >= domain_size and p > num_chunks.
        p = next_prime(max(num_chunks + 1, 2))
        while p**k < domain_size:
            p = next_prime(p + 1)
        return cls(message_length=k, codeword_length=num_chunks, prime=p)

    # ----- properties --------------------------------------------------------

    @property
    def field(self) -> PrimeField:
        return PrimeField(self.prime)

    @property
    def max_correctable_errors(self) -> int:
        """Number of symbol errors Berlekamp-Welch is guaranteed to correct."""
        return (self.codeword_length - self.message_length) // 2

    @property
    def rate(self) -> float:
        return self.message_length / self.codeword_length

    @property
    def max_domain_size(self) -> int:
        """Largest integer domain representable by a message (p^k)."""
        return self.prime**self.message_length

    # ----- integer <-> message symbol packing --------------------------------

    def message_from_int(self, value: int) -> List[int]:
        """Pack an integer into ``message_length`` base-p symbols."""
        return int_to_symbols(value, self.message_length, self.prime)

    def int_from_message(self, message: Sequence[int]) -> int:
        """Inverse of :meth:`message_from_int`."""
        return symbols_to_int(message, self.prime)

    # ----- encode / decode ----------------------------------------------------

    def encode(self, message: Sequence[int]) -> List[int]:
        """Encode k message symbols into M codeword symbols.

        The message symbols are interpreted as the coefficients of a polynomial
        of degree < k, evaluated at the points 0, 1, ..., M-1.
        """
        if len(message) != self.message_length:
            raise ValueError(f"message must have {self.message_length} symbols")
        gf = self.field
        poly = [gf.normalize(m) for m in message]
        return [gf.poly_eval(poly, x) for x in range(self.codeword_length)]

    def encode_int(self, value: int) -> List[int]:
        """Encode an integer in ``[0, p^k)`` into M codeword symbols."""
        return self.encode(self.message_from_int(value))

    def encode_batch(self, values) -> "np.ndarray":
        """Vectorised encoding of many integers at once.

        Returns an ``(len(values), codeword_length)`` array whose row i is
        ``encode_int(values[i])``.  Used by the heavy-hitters protocol to
        compute every user's chunk in one numpy pass.
        """
        import numpy as np

        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.max_domain_size):
            raise ValueError("values outside the representable domain")
        # Base-p digits of every value (little-endian), shape (n, k).
        digits = np.empty((values.size, self.message_length), dtype=np.int64)
        remaining = values.copy()
        for j in range(self.message_length):
            digits[:, j] = remaining % self.prime
            remaining //= self.prime
        # Horner evaluation at each point, vectorised over values.
        codewords = np.empty((values.size, self.codeword_length), dtype=np.int64)
        for point in range(self.codeword_length):
            acc = np.zeros(values.size, dtype=np.int64)
            for j in range(self.message_length - 1, -1, -1):
                acc = (acc * point + digits[:, j]) % self.prime
            codewords[:, point] = acc
        return codewords

    def decode(self, received: Sequence[Optional[int]],
               max_errors: Optional[int] = None) -> List[int]:
        """Decode a received word with errors and/or erasures.

        Parameters
        ----------
        received:
            Length-M sequence; ``None`` marks an erasure, otherwise a symbol in
            [0, p).  Erasures are handled by restriction to the known positions.
        max_errors:
            Error budget to attempt (defaults to the maximum correctable count
            given the number of erasures).

        Returns
        -------
        The k message symbols.

        Raises
        ------
        DecodingFailure
            If no codeword within the error budget explains the received word.
        """
        if len(received) != self.codeword_length:
            raise ValueError(f"received word must have {self.codeword_length} symbols")
        gf = self.field
        positions = [i for i, r in enumerate(received) if r is not None]
        values = [gf.normalize(received[i]) for i in positions]
        num_known = len(positions)
        if num_known < self.message_length:
            raise DecodingFailure("too many erasures to determine the message")

        budget = (num_known - self.message_length) // 2
        if max_errors is not None:
            budget = min(budget, int(max_errors))

        # Fast path: try plain interpolation on the first k known points and
        # check global consistency; succeeds when there are no errors.
        candidate = self._try_interpolation(positions, values)
        if candidate is not None:
            return candidate

        for num_errors in range(1, budget + 1):
            candidate = self._berlekamp_welch(positions, values, num_errors)
            if candidate is not None:
                return candidate
        raise DecodingFailure(
            f"could not decode within {budget} errors on {num_known} known symbols")

    def decode_int(self, received: Sequence[Optional[int]],
                   max_errors: Optional[int] = None) -> int:
        """Decode and repack the message symbols into an integer."""
        return self.int_from_message(self.decode(received, max_errors))

    # ----- internals ----------------------------------------------------------

    def _try_interpolation(self, positions: Sequence[int], values: Sequence[int]
                           ) -> Optional[List[int]]:
        """Interpolate through the first k points; accept only if consistent."""
        gf = self.field
        k = self.message_length
        xs = positions[:k]
        ys = values[:k]
        poly = gf.lagrange_interpolate(xs, ys)
        if gf.poly_degree(poly) >= k:
            return None
        for pos, val in zip(positions, values, strict=True):
            if gf.poly_eval(poly, pos) != val:
                return None
        padded = list(poly) + [0] * (k - len(poly))
        return padded[:k]

    def _berlekamp_welch(self, positions: Sequence[int], values: Sequence[int],
                         num_errors: int) -> Optional[List[int]]:
        """Berlekamp-Welch decoding assuming exactly <= num_errors errors.

        Solve for polynomials E (monic, degree e) and Q (degree < e + k) with
        ``Q(x_i) = r_i * E(x_i)`` for every known position; then the message
        polynomial is Q / E if the division is exact.
        """
        gf = self.field
        k = self.message_length
        e = num_errors
        num_q = e + k          # unknown coefficients of Q
        num_e = e              # unknown coefficients of E (monic => x^e implicit)
        unknowns = num_q + num_e

        matrix: List[List[int]] = []
        rhs: List[int] = []
        for x, r in zip(positions, values, strict=True):
            row = [0] * unknowns
            # Q coefficients: + x^j
            power = 1
            for j in range(num_q):
                row[j] = power
                power = (power * x) % gf.p
            # E coefficients: - r * x^j  (for j < e)
            power = 1
            for j in range(num_e):
                row[num_q + j] = (-r * power) % gf.p
                power = (power * x) % gf.p
            # Monic term of E contributes r * x^e to the RHS.
            rhs.append((r * pow(x, e, gf.p)) % gf.p)
            matrix.append(row)

        solution = gf.solve_linear_system(matrix, rhs)
        if solution is None:
            return None
        q_poly = gf.poly_trim(solution[:num_q])
        e_poly = gf.poly_trim(solution[num_q:] + [1])  # monic
        message_poly = gf.poly_divides_exactly(q_poly, e_poly)
        if message_poly is None:
            return None
        if gf.poly_degree(message_poly) >= k:
            return None
        # Verify the error budget: the number of disagreeing positions must be
        # at most num_errors, otherwise this is a spurious solution.
        disagreements = 0
        for x, r in zip(positions, values, strict=True):
            if gf.poly_eval(message_poly, x) != r:
                disagreements += 1
        if disagreements > num_errors:
            return None
        padded = list(message_poly) + [0] * (k - len(message_poly))
        return padded[:k]
