"""Prime-field arithmetic GF(p) and polynomial algebra over it.

The Reed-Solomon outer code of Appendix B needs: modular inverses, polynomial
evaluation, Lagrange interpolation, polynomial division, and Gaussian
elimination over GF(p) (for the Berlekamp-Welch error-correcting decoder).
Everything here works with plain Python integers; field sizes in this library
are tiny (a few thousand at most), so clarity beats vectorisation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.hashing.primes import is_prime


class PrimeField:
    """The finite field GF(p) for a prime p, with polynomial helpers.

    Polynomials are represented as lists of coefficients in increasing degree
    order (``poly[i]`` is the coefficient of ``x**i``); trailing zeros are
    trimmed by :meth:`poly_trim`.
    """

    def __init__(self, prime: int) -> None:
        prime = int(prime)
        if not is_prime(prime):
            raise ValueError(f"{prime} is not prime")
        self.p = prime

    # ----- scalar arithmetic -------------------------------------------------

    def normalize(self, a: int) -> int:
        """Reduce an integer into [0, p)."""
        return int(a) % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on zero."""
        a = a % self.p
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(p)")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    # ----- polynomial arithmetic --------------------------------------------

    @staticmethod
    def poly_trim(poly: Sequence[int]) -> List[int]:
        """Remove trailing zero coefficients (the zero polynomial becomes [])."""
        out = list(poly)
        while out and out[-1] == 0:
            out.pop()
        return out

    def poly_degree(self, poly: Sequence[int]) -> int:
        """Degree of the polynomial, -1 for the zero polynomial."""
        return len(self.poly_trim(poly)) - 1

    def poly_eval(self, poly: Sequence[int], x: int) -> int:
        """Evaluate a polynomial at the point ``x`` (Horner's rule)."""
        acc = 0
        for coef in reversed(list(poly)):
            acc = (acc * x + coef) % self.p
        return acc

    def poly_add(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        n = max(len(a), len(b))
        out = [0] * n
        for i in range(n):
            av = a[i] if i < len(a) else 0
            bv = b[i] if i < len(b) else 0
            out[i] = (av + bv) % self.p
        return self.poly_trim(out)

    def poly_sub(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return self.poly_add(a, [(-c) % self.p for c in b])

    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        a = self.poly_trim(a)
        b = self.poly_trim(b)
        if not a or not b:
            return []
        out = [0] * (len(a) + len(b) - 1)
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            for j, bj in enumerate(b):
                out[i + j] = (out[i + j] + ai * bj) % self.p
        return self.poly_trim(out)

    def poly_scale(self, a: Sequence[int], s: int) -> List[int]:
        return self.poly_trim([(c * s) % self.p for c in a])

    def poly_divmod(self, a: Sequence[int], b: Sequence[int]
                    ) -> Tuple[List[int], List[int]]:
        """Polynomial division with remainder: returns (quotient, remainder)."""
        a = self.poly_trim(a)
        b = self.poly_trim(b)
        if not b:
            raise ZeroDivisionError("division by the zero polynomial")
        if len(a) < len(b):
            return [], a
        remainder = list(a)
        quotient = [0] * (len(a) - len(b) + 1)
        lead_inv = self.inv(b[-1])
        for shift in range(len(a) - len(b), -1, -1):
            coef = (remainder[shift + len(b) - 1] * lead_inv) % self.p
            quotient[shift] = coef
            if coef:
                for j, bj in enumerate(b):
                    remainder[shift + j] = (remainder[shift + j] - coef * bj) % self.p
        return self.poly_trim(quotient), self.poly_trim(remainder)

    def poly_divides_exactly(self, a: Sequence[int], b: Sequence[int]
                             ) -> Optional[List[int]]:
        """Return a/b if b divides a exactly, else None."""
        q, r = self.poly_divmod(a, b)
        if self.poly_trim(r):
            return None
        return q

    # ----- interpolation and linear algebra ----------------------------------

    def lagrange_interpolate(self, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
        """The unique polynomial of degree < len(xs) through the given points."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if len(set(x % self.p for x in xs)) != len(xs):
            raise ValueError("interpolation points must be distinct")
        result: List[int] = []
        for i, (xi, yi) in enumerate(zip(xs, ys, strict=True)):
            # Basis polynomial prod_{j != i} (x - xj) / (xi - xj)
            basis = [1]
            denom = 1
            for j, xj in enumerate(xs):
                if j == i:
                    continue
                basis = self.poly_mul(basis, [(-xj) % self.p, 1])
                denom = (denom * (xi - xj)) % self.p
            scale = self.mul(yi % self.p, self.inv(denom))
            result = self.poly_add(result, self.poly_scale(basis, scale))
        return result

    def solve_linear_system(self, matrix: Sequence[Sequence[int]],
                            rhs: Sequence[int]) -> Optional[List[int]]:
        """Solve ``A x = b`` over GF(p) by Gaussian elimination.

        Returns one solution (free variables set to 0) or ``None`` if the
        system is inconsistent.  ``matrix`` is a list of rows.
        """
        rows = len(matrix)
        if rows != len(rhs):
            raise ValueError("matrix and rhs dimensions disagree")
        cols = len(matrix[0]) if rows else 0
        aug = [[v % self.p for v in row] + [rhs[i] % self.p]
               for i, row in enumerate(matrix)]

        pivot_cols: List[int] = []
        r = 0
        for c in range(cols):
            pivot = None
            for rr in range(r, rows):
                if aug[rr][c] != 0:
                    pivot = rr
                    break
            if pivot is None:
                continue
            aug[r], aug[pivot] = aug[pivot], aug[r]
            inv = self.inv(aug[r][c])
            aug[r] = [(v * inv) % self.p for v in aug[r]]
            for rr in range(rows):
                if rr != r and aug[rr][c] != 0:
                    factor = aug[rr][c]
                    aug[rr] = [(aug[rr][j] - factor * aug[r][j]) % self.p
                               for j in range(cols + 1)]
            pivot_cols.append(c)
            r += 1
            if r == rows:
                break
        # Check consistency: a zero row with non-zero rhs means no solution.
        for rr in range(r, rows):
            if all(v == 0 for v in aug[rr][:cols]) and aug[rr][cols] != 0:
                return None
        solution = [0] * cols
        for row_idx, c in enumerate(pivot_cols):
            solution[c] = aug[row_idx][cols]
        return solution

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PrimeField(p={self.p})"
