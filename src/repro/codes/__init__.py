"""Error-correcting codes and the unique-list-recoverable code of Theorem 3.6.

Layers, bottom-up:

* :mod:`repro.codes.gf` — arithmetic over a prime field GF(p): modular
  inverses, polynomial evaluation/interpolation, and Gaussian elimination.
* :mod:`repro.codes.reed_solomon` — a constant-rate Reed-Solomon code with a
  Berlekamp-Welch decoder; this plays the role of the "standard error
  correcting code with constant rate correcting an Ω(1) fraction of errors"
  required by Appendix B (substituting for linear-time Spielman codes — see
  DESIGN.md, substitution 1).
* :mod:`repro.codes.list_recoverable` — the (α, ℓ, L)-unique-list-recoverable
  code (Enc, Dec) of Theorem 3.6 / Appendix B: the encoder interleaves
  Reed-Solomon chunks with expander-neighbourhood hash values, and the decoder
  builds the layered graph over [M]×[Y], finds spectral clusters, and decodes
  each cluster's chunks with the outer code.
"""

from repro.codes.gf import PrimeField
from repro.codes.list_recoverable import (
    EncodedSymbol,
    ListRecoveryParameters,
    UniqueListRecoverableCode,
)
from repro.codes.reed_solomon import DecodingFailure, ReedSolomonCode

__all__ = [
    "PrimeField",
    "ReedSolomonCode",
    "DecodingFailure",
    "UniqueListRecoverableCode",
    "ListRecoveryParameters",
    "EncodedSymbol",
]
