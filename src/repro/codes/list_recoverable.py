"""The unique-list-recoverable code of Theorem 3.6 (Appendix B).

Construction (following Appendix B):

* An outer Reed-Solomon code ``enc`` over GF(p) with constant rate splits a
  domain element x into M chunks, one per coordinate (``enc(x)_m``).
* A d-regular spectral expander F on M vertices supplies, for every coordinate
  m, an ordered neighbourhood Γ(m).
* The inner symbol at coordinate m is

      E~nc(x)_m = (enc(x)_m, h_{Γ(m)_1}(x), ..., h_{Γ(m)_d}(x))

  packed into a single integer z in [Z], and the full encoding is
  ``Enc(x)_m = (h_m(x), E~nc(x)_m)``.

* The decoder receives lists L_1, ..., L_M of (y, z) pairs with distinct y per
  list.  It builds the layered graph on [M]×[Y]: the entry (y, z) in L_m
  suggests edges from (m, y) to (Γ(m)_k, y_k) for each unpacked neighbour hash
  y_k, and an edge is added only when both endpoints suggest it.  Each heavy
  hitter contributes an (almost intact) copy of F, recovered as a spectral
  cluster; the cluster's chunks form a corrupted Reed-Solomon word which the
  outer decoder corrects, and the candidate is accepted if its encoding agrees
  with at least a (1-α) fraction of the lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.codes.reed_solomon import DecodingFailure, ReedSolomonCode
from repro.graphs.expanders import ExpanderGraph, random_regular_expander
from repro.graphs.spectral_cluster import SpectralClusterer
from repro.hashing.kwise import KWiseHashFamily
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int, check_probability


class EncodedSymbol(NamedTuple):
    """One coordinate of the encoding: the hash value y and the packed symbol z."""

    y: int
    z: int


@dataclass(frozen=True)
class ListRecoveryParameters:
    """Parameters (α, ℓ, L) and dimensions (M, Y, Z) of the code.

    Attributes
    ----------
    domain_size:
        Size of the encoded domain |X|.
    num_coordinates:
        Number of coordinates M.
    hash_range:
        Range Y of the per-coordinate hash functions.
    list_size:
        Maximum length ℓ of each input list to the decoder.
    alpha:
        Fraction of coordinates allowed to be "bad" for a codeword that must
        still be recovered.
    expander_degree:
        Degree d of the neighbourhood expander.
    max_output_size:
        Maximum number of codewords the decoder returns (the L in (α, ℓ, L)).
    """

    domain_size: int
    num_coordinates: int
    hash_range: int
    list_size: int
    alpha: float
    expander_degree: int
    max_output_size: int

    def __post_init__(self) -> None:
        check_positive_int(self.domain_size, "domain_size")
        check_positive_int(self.num_coordinates, "num_coordinates")
        check_positive_int(self.hash_range, "hash_range")
        check_positive_int(self.list_size, "list_size")
        check_positive_int(self.expander_degree, "expander_degree")
        check_positive_int(self.max_output_size, "max_output_size")
        check_probability(self.alpha, "alpha", allow_zero=True, allow_one=False)


class UniqueListRecoverableCode:
    """(α, ℓ, L)-unique-list-recoverable code (Enc, Dec) per Theorem 3.6.

    Parameters
    ----------
    params:
        The code dimensions; see :class:`ListRecoveryParameters`.
    hashes:
        The fixed hash functions ``h_1, ..., h_M : X -> [Y]`` (Theorem 3.6 is
        stated "for every fixed choice of functions h_1, ..., h_M").  Any
        callables mapping integers to ``[0, hash_range)`` are accepted.
    rng:
        Randomness used only for the Las-Vegas expander construction.
    rate:
        Rate of the outer Reed-Solomon code (default 1/2, correcting 25% of
        chunk errors).
    """

    def __init__(self, params: ListRecoveryParameters, hashes: Sequence,
                 rng: RandomState = None, rate: float = 0.5) -> None:
        if len(hashes) != params.num_coordinates:
            raise ValueError("need exactly one hash function per coordinate")
        self.params = params
        self.hashes = list(hashes)
        self.outer_code = ReedSolomonCode.for_domain(
            params.domain_size, params.num_coordinates, rate=rate)
        self.expander: ExpanderGraph = random_regular_expander(
            params.num_coordinates, params.expander_degree, rng=rng)
        self._clusterer = SpectralClusterer(
            expected_cluster_size=params.num_coordinates,
            min_cluster_size=max(2, self.outer_code.message_length),
        )

    # ----- constructors --------------------------------------------------------

    @classmethod
    def create(cls, domain_size: int, num_coordinates: int, hash_range: int,
               list_size: int, alpha: float = 0.25, expander_degree: int = 4,
               output_factor: int = 4, rng: RandomState = None,
               rate: float = 0.5) -> "UniqueListRecoverableCode":
        """Sample fresh pairwise independent hashes and build the code."""
        gen = as_generator(rng)
        params = ListRecoveryParameters(
            domain_size=domain_size,
            num_coordinates=num_coordinates,
            hash_range=hash_range,
            list_size=list_size,
            alpha=alpha,
            expander_degree=expander_degree,
            max_output_size=output_factor * list_size,
        )
        family = KWiseHashFamily.create(domain_size, hash_range, independence=2)
        hashes = family.sample_many(num_coordinates, gen)
        return cls(params, hashes, rng=gen, rate=rate)

    # ----- dimensions ----------------------------------------------------------

    @property
    def z_alphabet_size(self) -> int:
        """Size Z of the packed inner symbol alphabet: p * Y^d."""
        return self.outer_code.prime * (self.params.hash_range ** self.expander.degree)

    @property
    def num_coordinates(self) -> int:
        return self.params.num_coordinates

    # ----- symbol packing -------------------------------------------------------

    def _pack_z(self, chunk: int, neighbor_hashes: Sequence[int]) -> int:
        """Pack (chunk, neighbour hash values) into one integer in [Z]."""
        z = 0
        for value in reversed(list(neighbor_hashes)):
            z = z * self.params.hash_range + int(value)
        return z * self.outer_code.prime + int(chunk)

    def _unpack_z(self, z: int) -> Tuple[int, Tuple[int, ...]]:
        """Inverse of :meth:`_pack_z`."""
        chunk = z % self.outer_code.prime
        rest = z // self.outer_code.prime
        values = []
        for _ in range(self.expander.degree):
            values.append(rest % self.params.hash_range)
            rest //= self.params.hash_range
        return int(chunk), tuple(int(v) for v in values)

    # ----- encoding --------------------------------------------------------------

    def encode_chunks(self, x: int) -> List[int]:
        """The outer-code chunks enc(x)_1, ..., enc(x)_M."""
        self._check_domain(x)
        return self.outer_code.encode_int(x)

    def encode_tilde(self, x: int) -> List[int]:
        """E~nc(x): the packed inner symbols z_1, ..., z_M."""
        self._check_domain(x)
        chunks = self.outer_code.encode_int(x)
        out = []
        for m in range(self.num_coordinates):
            neighbor_hashes = [int(self.hashes[j](x)) for j in self.expander.neighbors(m)]
            out.append(self._pack_z(chunks[m], neighbor_hashes))
        return out

    def encode(self, x: int) -> List[EncodedSymbol]:
        """Enc(x): the list of (h_m(x), E~nc(x)_m) pairs."""
        self._check_domain(x)
        z_values = self.encode_tilde(x)
        return [EncodedSymbol(y=int(self.hashes[m](x)), z=z_values[m])
                for m in range(self.num_coordinates)]

    def _check_domain(self, x: int) -> None:
        if not 0 <= int(x) < self.params.domain_size:
            raise ValueError(f"{x} outside domain [0, {self.params.domain_size})")

    # ----- decoding ---------------------------------------------------------------

    def decode(self, lists: Sequence[Sequence[Tuple[int, int]]]) -> List[int]:
        """Dec(L_1, ..., L_M): recover all codewords agreeing with >= (1-α)M lists.

        Each ``lists[m]`` is a sequence of (y, z) pairs; per Definition 3.5 the
        y values within one list must be distinct (duplicates are dropped,
        keeping the first occurrence).
        """
        if len(lists) != self.num_coordinates:
            raise ValueError("need exactly one list per coordinate")

        per_coord: List[Dict[int, Tuple[int, Tuple[int, ...]]]] = []
        for m, entries in enumerate(lists):
            table: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
            for y, z in list(entries)[: self.params.list_size]:
                y = int(y)
                if y in table:
                    continue
                table[y] = self._unpack_z(int(z))
            per_coord.append(table)

        adjacency = self._build_layered_graph(per_coord)
        clusters = self._clusterer.find_clusters(adjacency)

        candidates: List[int] = []
        seen: Set[int] = set()
        list_sets = [set((int(y), int(z)) for y, z in entries)
                     for entries in lists]
        min_agreement = int((1.0 - self.params.alpha) * self.num_coordinates)

        for cluster in clusters:
            candidate = self._decode_cluster(cluster, per_coord)
            if candidate is None or candidate in seen:
                continue
            if self._agreement(candidate, list_sets) < min_agreement:
                continue
            seen.add(candidate)
            candidates.append(candidate)
            if len(candidates) >= self.params.max_output_size:
                break
        return candidates

    # ----- decoder internals --------------------------------------------------------

    def _build_layered_graph(
            self, per_coord: Sequence[Dict[int, Tuple[int, Tuple[int, ...]]]]
    ) -> Dict[Tuple[int, int], Set[Tuple[int, int]]]:
        """Add an edge (m, y) ~ (m', y') only when both endpoints suggest it."""
        adjacency: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        for m, table in enumerate(per_coord):
            neighbors_m = self.expander.neighbors(m)
            for y, (_chunk, nbr_hashes) in table.items():
                adjacency.setdefault((m, y), set())
                for k, m2 in enumerate(neighbors_m):
                    y2 = nbr_hashes[k]
                    entry2 = per_coord[m2].get(y2)
                    if entry2 is None:
                        continue
                    # Does (m2, y2) suggest the reverse edge back to (m, y)?
                    try:
                        back_index = self.expander.neighbor_index(m2, m)
                    except ValueError:  # pragma: no cover - regular graph is symmetric
                        continue
                    if entry2[1][back_index] != y:
                        continue
                    adjacency.setdefault((m, y), set()).add((m2, y2))
                    adjacency.setdefault((m2, y2), set()).add((m, y))
        return adjacency

    def _decode_cluster(self, cluster, per_coord) -> Optional[int]:
        """Assemble the cluster's chunks into a received word and decode it."""
        received: List[Optional[int]] = [None] * self.num_coordinates
        conflict: Set[int] = set()
        for (m, y) in cluster:
            chunk = per_coord[m][y][0]
            if received[m] is None:
                received[m] = chunk
            elif received[m] != chunk:
                conflict.add(m)
        for m in conflict:
            received[m] = None
        known = sum(1 for r in received if r is not None)
        if known < self.outer_code.message_length:
            return None
        try:
            value = self.outer_code.decode_int(received)
        except DecodingFailure:
            return None
        if not 0 <= value < self.params.domain_size:
            return None
        return int(value)

    def _agreement(self, x: int, list_sets: Sequence[Set[Tuple[int, int]]]) -> int:
        """Number of coordinates m with Enc(x)_m ∈ L_m."""
        encoding = self.encode(x)
        return sum(1 for m, symbol in enumerate(encoding)
                   if (symbol.y, symbol.z) in list_sets[m])
