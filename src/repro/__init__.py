"""repro — a reproduction of "Heavy Hitters and the Structure of Local Privacy".

Bun, Nelson and Stemmer (PODS 2018, arXiv:1711.04740) give a locally
differentially private heavy-hitters protocol with optimal worst-case error in
every parameter (including the failure probability), a matching lower bound,
and a collection of structural results about the local model: advanced
grouposition, max-information bounds, pure-DP composition for randomized
response, and a generic approximate-to-pure transformation.

This package implements all of it:

========================  =====================================================
``repro.protocol``        Client/server wire API: serializable ``PublicParams``,
                          stateless ``ClientEncoder``, mergeable
                          ``ServerAggregator`` for every protocol below
``repro.engine``          Multiprocess simulation engine over the wire API:
                          deterministic chunk plans, process-pool execution,
                          bit-identical for every worker count
``repro.core``            PrivateExpanderSketch (Section 3.3) and its parameters
``repro.frequency``       Hashtogram frequency oracles (Theorems 3.7/3.8)
``repro.randomizers``     Local randomizers (RR, unary, RAPPOR, Hadamard, ...)
``repro.codes``           Reed-Solomon + unique-list-recoverable codes (Thm 3.6)
``repro.graphs``          Spectral expanders and cluster-preserving clustering
``repro.hashing``         k-wise independent hash families
``repro.baselines``       Bassily et al. [3], Bassily-Smith-style, RAPPOR, and
                          non-private streaming baselines
``repro.accounting``      Composition, advanced grouposition (Thm 4.2/4.3),
                          max-information (Thm 4.5)
``repro.structure``       Composed randomized response (Thm 5.1), GenProt (Thm 6.1)
``repro.lowerbounds``     Anti-concentration and the Theorem 7.2 experiment
``repro.workloads``       Synthetic Zipf / planted / URL / word workloads
``repro.analysis``        Concentration bounds, Table 1 formulas, HH metrics
========================  =====================================================

Deployment model
----------------

The local model is client/server by construction, and the primary API mirrors
that.  A deployment has three roles:

1. **Server (setup).** Publish serializable public parameters — hash seeds,
   bucket counts, ε, the repetition-assignment policy::

       from repro import HashtogramParams
       params = HashtogramParams.create(domain_size=1 << 20, epsilon=1.0,
                                        num_buckets=256, rng=0)
       payload = params.to_dict()          # JSON-safe; ship to every client

2. **Clients (encode).** Each of the n users rebuilds the parameters, runs the
   stateless encoder on her own device, and ships one short report::

       encoder = HashtogramParams.from_dict(payload).make_encoder()
       report = encoder.encode(value, rng)          # a few bits on the wire

3. **Server (aggregate + estimate).** Any number of shard workers ``absorb``
   reports as they arrive; shard states ``merge`` commutatively and
   associatively (exact integer arithmetic, so K shards reproduce one server
   bit for bit); ``finalize()`` debiases into a fitted oracle::

       from repro import merge_aggregators
       shards = [params.make_aggregator() for _ in range(4)]
       ...                                           # shards absorb reports
       oracle = merge_aggregators(shards).finalize()
       oracle.estimate(x)

The one-shot ``FrequencyOracle.collect(values)`` and
``HeavyHitterProtocol.run(values)`` entry points remain as simulation
conveniences, implemented exactly as ``encode_batch → absorb_batch →
finalize`` on this wire API; ``repro.engine.run_simulation`` executes the
same loop across a process pool with bit-identical output.

Quickstart::

    import numpy as np
    from repro import PrivateExpanderSketch, planted_workload

    workload = planted_workload(num_users=50_000, domain_size=1 << 20,
                                heavy_fractions=[0.2, 0.15], rng=0)
    protocol = PrivateExpanderSketch(domain_size=1 << 20, epsilon=2.0)
    result = protocol.run(workload.values, rng=1)
    print(result.top(5))
"""

from repro.accounting import (
    GroupPrivacyAnalyzer,
    advanced_grouposition,
    advanced_grouposition_approximate,
    ldp_max_information,
)
from repro.analysis import score_heavy_hitters, table1_rows
from repro.applications import HierarchicalRangeOracle, PrivateQuantileEstimator
from repro.baselines import (
    DomainScanHeavyHitters,
    RapporHeavyHitters,
    SingleHashHeavyHitters,
)
from repro.core import (
    HeavyHitterProtocol,
    HeavyHitterResult,
    PrivateExpanderSketch,
    ProtocolParameters,
)
from repro.engine import EngineResult, run_simulation
from repro.frequency import (
    CountMeanSketchOracle,
    ExplicitHistogramOracle,
    FrequencyOracle,
    HashtogramOracle,
)
from repro.lowerbounds import CountingLowerBoundExperiment
from repro.protocol import (
    ClientEncoder,
    CountMeanSketchParams,
    ExpanderSketchParams,
    ExplicitHistogramParams,
    HashtogramParams,
    PublicParams,
    RapporParams,
    Report,
    ReportBatch,
    ServerAggregator,
    SingleHashParams,
    merge_aggregators,
)
from repro.structure import ApproximateComposedRandomizedResponse, GenProt
from repro.workloads import (
    planted_workload,
    synthetic_url_dataset,
    synthetic_word_dataset,
    uniform_workload,
    zipf_workload,
)

__version__ = "1.0.0"

__all__ = [
    "PrivateExpanderSketch",
    "ProtocolParameters",
    "HeavyHitterProtocol",
    "HeavyHitterResult",
    "PublicParams",
    "ClientEncoder",
    "ServerAggregator",
    "Report",
    "ReportBatch",
    "merge_aggregators",
    "EngineResult",
    "run_simulation",
    "ExplicitHistogramParams",
    "HashtogramParams",
    "CountMeanSketchParams",
    "RapporParams",
    "ExpanderSketchParams",
    "SingleHashParams",
    "ExplicitHistogramOracle",
    "HashtogramOracle",
    "CountMeanSketchOracle",
    "FrequencyOracle",
    "HierarchicalRangeOracle",
    "PrivateQuantileEstimator",
    "SingleHashHeavyHitters",
    "DomainScanHeavyHitters",
    "RapporHeavyHitters",
    "ApproximateComposedRandomizedResponse",
    "GenProt",
    "advanced_grouposition",
    "advanced_grouposition_approximate",
    "GroupPrivacyAnalyzer",
    "ldp_max_information",
    "CountingLowerBoundExperiment",
    "zipf_workload",
    "uniform_workload",
    "planted_workload",
    "synthetic_url_dataset",
    "synthetic_word_dataset",
    "score_heavy_hitters",
    "table1_rows",
    "__version__",
]
