"""Command-line interface for running the reproduction's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli list                    # show the available experiments
    python -m repro.cli run table1              # regenerate Table 1
    python -m repro.cli run grouposition        # Section 4 experiment
    python -m repro.cli run table1 --quick      # smaller, faster configuration
    python -m repro.cli quickstart              # the README quickstart, end to end
    python -m repro.cli simulate --shards 4     # sharded wire-API aggregation
    python -m repro.cli simulate --workers 4    # multiprocess engine simulation
    python -m repro.cli bench                   # engine scaling -> BENCH_engine.json

``run`` prints the same tables that ``pytest benchmarks/ --benchmark-only``
produces; the quick configurations (``--quick``) are what
``python benchmarks/generate_experiments_md.py --quick`` records in
EXPERIMENTS.md at the repository root.

``simulate`` drives the client/server wire API end to end: publish public
parameters, encode one report per user, ingest the report stream, merge, and
estimate.  ``--shards K`` scatters the reports over K in-process shard
aggregators; ``--workers N`` runs the multiprocess engine
(:mod:`repro.engine`) instead — its estimates are bit-identical for every N
under the same seed.  ``bench`` sweeps the engine over worker counts and
writes the measured throughput to ``BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import (
    ComposedRRConfig,
    ErrorCurveConfig,
    FrequencyOracleConfig,
    GenProtConfig,
    GroupositionConfig,
    HashingAblationConfig,
    HashtogramAblationConfig,
    ListRecoveryConfig,
    LowerBoundConfig,
    MaxInformationConfig,
    Table1Config,
    format_table,
    run_composed_rr,
    run_error_vs_beta,
    run_error_vs_epsilon,
    run_error_vs_n,
    run_frequency_oracle,
    run_genprot,
    run_grouposition,
    run_hashing_ablation,
    run_hashtogram_ablation,
    run_list_recovery,
    run_lower_bound,
    run_max_information,
    run_table1,
)


def _table1(quick: bool):
    config = Table1Config()
    if quick:
        config = Table1Config(num_users=15_000, domain_size=1 << 16,
                              scan_domain_size=1 << 10,
                              heavy_fractions=[0.35, 0.25])
    return [("T1: Table 1 (measured)", run_table1(config))]


def _error_vs_beta(quick: bool):
    config = ErrorCurveConfig()
    if quick:
        config = ErrorCurveConfig(num_users=15_000, domain_size=1 << 16,
                                  betas=[0.2, 0.01],
                                  probe_fractions=[0.12, 0.2, 0.3])
    return [("E1: detection threshold vs beta", run_error_vs_beta(config))]


def _error_vs_n(quick: bool):
    config = ErrorCurveConfig()
    if quick:
        config = ErrorCurveConfig(domain_size=1 << 16,
                                  num_users_sweep=[8_000, 16_000])
    return [("E2: error vs n", run_error_vs_n(config))]


def _error_vs_epsilon(quick: bool):
    config = ErrorCurveConfig()
    if quick:
        config = ErrorCurveConfig(num_users=15_000, domain_size=1 << 16,
                                  epsilon_sweep=[2.0, 8.0])
    return [("E3: error vs epsilon", run_error_vs_epsilon(config))]


def _frequency_oracle(quick: bool):
    config = FrequencyOracleConfig()
    if quick:
        config = FrequencyOracleConfig(num_users=8_000,
                                       domain_sizes=[1 << 8, 1 << 14],
                                       num_queries=60)
    return [("E4: frequency-oracle error", run_frequency_oracle(config))]


def _grouposition(quick: bool):
    config = GroupositionConfig()
    if quick:
        config = GroupositionConfig(group_sizes=[4, 64, 256], num_samples=8_000)
    return [("E5: advanced grouposition", run_grouposition(config))]


def _max_information(quick: bool):
    config = MaxInformationConfig()
    if quick:
        config = MaxInformationConfig(num_users_sweep=[100, 1_000],
                                      empirical_users=60,
                                      empirical_samples=500)
    return [("E6: max-information", run_max_information(config))]


def _composed_rr(quick: bool):
    config = ComposedRRConfig()
    if quick:
        config = ComposedRRConfig(num_bits_sweep=[8, 32, 128])
    return [("E7: composed randomized response", run_composed_rr(config))]


def _genprot(quick: bool):
    config = GenProtConfig()
    if quick:
        config = GenProtConfig(num_users=800, privacy_trials=800)
    return [("E8: GenProt transformation", run_genprot(config))]


def _lower_bound(quick: bool):
    config = LowerBoundConfig()
    if quick:
        config = LowerBoundConfig(num_users=3_000, num_trials=80,
                                  betas=[0.3, 0.1], anticoncentration_bits=200)
    results = run_lower_bound(config)
    return [("E9a: counting lower bound", results["counting"]),
            ("E9b: anti-concentration", results["anti_concentration"])]


def _list_recovery(quick: bool):
    config = ListRecoveryConfig()
    if quick:
        config = ListRecoveryConfig(num_coordinates=10, num_codewords=3,
                                    corrupted_fractions=[0.0, 0.2, 0.5],
                                    num_trials=2)
    return [("E10: list recovery", run_list_recovery(config))]


def _ablation_hashing(quick: bool):
    config = HashingAblationConfig()
    if quick:
        config = HashingAblationConfig(num_users=15_000, domain_size=1 << 16,
                                       betas=[0.2, 0.02],
                                       heavy_fractions=[0.35, 0.25])
    return [("A1: hashing-structure ablation", run_hashing_ablation(config))]


def _ablation_hashtogram(quick: bool):
    config = HashtogramAblationConfig()
    if quick:
        config = HashtogramAblationConfig(num_users=6_000, domain_size=1 << 14,
                                          bucket_counts=[32, 256],
                                          repetition_counts=[1, 5],
                                          num_queries=40)
    return [("A2: Hashtogram ablation", run_hashtogram_ablation(config))]


#: experiment name -> (description, runner)
EXPERIMENTS: Dict[str, Tuple[str, Callable[[bool], List[Tuple[str, list]]]]] = {
    "table1": ("Table 1 protocol comparison (T1)", _table1),
    "error-vs-beta": ("Detection threshold vs failure probability (E1)", _error_vs_beta),
    "error-vs-n": ("Estimation error vs number of users (E2)", _error_vs_n),
    "error-vs-epsilon": ("Estimation error vs privacy parameter (E3)", _error_vs_epsilon),
    "frequency-oracle": ("Frequency-oracle accuracy (E4)", _frequency_oracle),
    "grouposition": ("Advanced grouposition (E5)", _grouposition),
    "max-information": ("Max-information bounds (E6)", _max_information),
    "composed-rr": ("Composition for randomized response (E7)", _composed_rr),
    "genprot": ("GenProt approximate-to-pure transformation (E8)", _genprot),
    "lower-bound": ("Error lower bound and anti-concentration (E9)", _lower_bound),
    "list-recovery": ("Unique list recovery under corruption (E10)", _list_recovery),
    "ablation-hashing": ("Hashing-structure ablation (A1)", _ablation_hashing),
    "ablation-hashtogram": ("Hashtogram bucket/repetition ablation (A2)", _ablation_hashtogram),
}


def _cmd_list(_args) -> int:
    print("available experiments:")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:<22s} {description}")
    return 0


def _cmd_run(args) -> int:
    name = args.experiment
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; use `list` to see the options",
              file=sys.stderr)
        return 2
    _, runner = EXPERIMENTS[name]
    for title, rows in runner(args.quick):
        print()
        print(format_table(rows, title=title))
    return 0


def _cmd_simulate(args) -> int:
    """Drive the wire API: params -> encode -> (sharded | multiprocess) -> merge."""
    import time

    from repro.analysis.metrics import true_frequencies
    from repro.engine import run_simulation
    from repro.engine.bench import build_bench_params
    from repro.protocol import merge_aggregators
    from repro.utils.rng import as_generator
    from repro.workloads.distributions import zipf_workload

    if args.shards is not None and args.workers is not None:
        print("simulate: --shards (in-process) and --workers (multiprocess "
              "engine) are mutually exclusive", file=sys.stderr)
        return 2
    shards = args.shards if args.shards is not None else 4
    if shards < 1:
        print("simulate: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("simulate: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.num_users < 1:
        print("simulate: --num-users must be at least 1", file=sys.stderr)
        return 2

    gen = as_generator(args.seed)
    domain_size = args.domain_size
    values = zipf_workload(args.num_users, domain_size,
                           support=min(2_000, domain_size), rng=gen)
    params = build_bench_params(args.protocol, domain_size, args.epsilon,
                                args.num_users, rng=gen)

    if args.workers is not None:
        # Multiprocess engine: the chunk plan and per-chunk seeds are drawn
        # from `gen` before any work is scheduled, so the estimates are
        # bit-identical for every --workers value.
        result = run_simulation(params, values, rng=gen, workers=args.workers)
        oracle = result.finalize()
        mode = (f"{args.workers} engine worker(s), "
                f"{result.num_chunks} chunk(s)")
        timing = (f"engine encode+ingest: {result.ingest_s:.3f}s; merge: "
                  f"{result.merge_s:.3f}s ({result.reports_per_s:,.0f} reports/s)")
    else:
        encode_start = time.perf_counter()
        batch = params.make_encoder().encode_batch(values, gen)
        encode_elapsed = time.perf_counter() - encode_start

        shard_aggs = [params.make_aggregator() for _ in range(shards)]
        ingest_start = time.perf_counter()
        for shard_agg, part in zip(shard_aggs, batch.split(shards)):
            shard_agg.absorb_batch(part)
        ingest_elapsed = time.perf_counter() - ingest_start
        oracle = merge_aggregators(shard_aggs).finalize()
        mode = f"{shards} shard(s)"
        throughput = args.num_users / max(ingest_elapsed, 1e-9)
        timing = (f"client encoding: {encode_elapsed:.3f}s; sharded ingestion: "
                  f"{ingest_elapsed:.3f}s ({throughput:,.0f} reports/s)")

    truth = true_frequencies(values)
    top = sorted(truth.items(), key=lambda kv: -kv[1])[:5]
    queries = [x for x, _ in top]
    estimates = oracle.estimate_many(queries)
    rows = [{"item": x, "true_count": truth[x], "estimate": round(float(a), 1)}
            for x, a in zip(queries, estimates)]
    print(format_table(rows, title=(
        f"simulate: {args.protocol} over {mode}, "
        f"n={args.num_users}, |X|={domain_size}, eps={args.epsilon}")))
    print(f"\nreport size: {params.report_bits:.1f} bits/user; "
          f"server state: {oracle.server_state_size} scalars")
    print(timing)
    return 0


def _cmd_bench(args) -> int:
    """Engine scaling sweep; writes the measured payload to BENCH_engine.json."""
    import json
    from pathlib import Path

    from repro.engine.bench import BENCH_PROTOCOLS, run_engine_bench

    try:
        worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    except ValueError:
        print("bench: --workers must be a comma-separated list of integers",
              file=sys.stderr)
        return 2
    if not worker_counts or any(w < 1 for w in worker_counts):
        print("bench: worker counts must be positive", file=sys.stderr)
        return 2
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    unknown = [p for p in protocols if p not in BENCH_PROTOCOLS]
    if not protocols or unknown:
        print(f"bench: --protocols must be a non-empty subset of "
              f"{','.join(BENCH_PROTOCOLS)}" +
              (f" (got {','.join(unknown)})" if unknown else ""),
              file=sys.stderr)
        return 2

    payload = run_engine_bench(protocols=protocols, worker_counts=worker_counts,
                               num_users=args.num_users,
                               domain_size=args.domain_size,
                               epsilon=args.epsilon, seed=args.seed,
                               repeats=args.repeats)
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")

    print(format_table(payload["results"], title=(
        f"bench: engine scaling, n={args.num_users}, |X|={args.domain_size}, "
        f"eps={args.epsilon}, cpu_count={payload['host']['cpu_count']}")))
    print(f"\nwrote {output}")
    if not all(row["identical_to_1_worker"] for row in payload["results"]):
        print("bench: parallel estimates diverged from the 1-worker run",
              file=sys.stderr)
        return 1
    return 0


def _cmd_quickstart(args) -> int:
    from repro import PrivateExpanderSketch, planted_workload

    workload = planted_workload(num_users=args.num_users,
                                domain_size=1 << 20,
                                heavy_fractions=[0.3, 0.22, 0.15], rng=0)
    protocol = PrivateExpanderSketch(domain_size=1 << 20, epsilon=args.epsilon,
                                     beta=0.05)
    result = protocol.run(workload.values, rng=1)
    rows = [{"item": item,
             "estimate": estimate,
             "true_count": workload.true_frequency(item)}
            for item, estimate in result.top(5)]
    print(format_table(rows, title="quickstart: recovered heavy hitters"))
    print(f"\ncommunication per user: "
          f"{result.communication_bits_per_user():.1f} bits; "
          f"epsilon = {result.epsilon}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Heavy Hitters and the Structure of Local Privacy'")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments") \
        .set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment name (see `list`)")
    run_parser.add_argument("--quick", action="store_true",
                            help="use a smaller, faster configuration")
    run_parser.set_defaults(func=_cmd_run)

    quickstart_parser = subparsers.add_parser(
        "quickstart", help="run the README quickstart end to end")
    quickstart_parser.add_argument("--num-users", type=int, default=60_000)
    quickstart_parser.add_argument("--epsilon", type=float, default=4.0)
    quickstart_parser.set_defaults(func=_cmd_quickstart)

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="drive the client/server wire API (sharded or multiprocess)")
    simulate_parser.add_argument("--protocol", default="hashtogram",
                                 choices=["hashtogram", "explicit", "cms"])
    simulate_parser.add_argument("--shards", type=int, default=None,
                                 help="number of in-process shard aggregators "
                                      "(default 4; exclusive with --workers)")
    simulate_parser.add_argument("--workers", type=int, default=None,
                                 help="run the multiprocess engine with this "
                                      "many workers (estimates are "
                                      "bit-identical for every value; "
                                      "exclusive with --shards)")
    simulate_parser.add_argument("--num-users", type=int, default=30_000)
    simulate_parser.add_argument("--domain-size", type=int, default=1 << 16)
    simulate_parser.add_argument("--epsilon", type=float, default=1.0)
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.set_defaults(func=_cmd_simulate)

    bench_parser = subparsers.add_parser(
        "bench",
        help="engine scaling benchmark; writes BENCH_engine.json")
    bench_parser.add_argument("--protocols", default="hashtogram",
                              help="comma-separated subset of "
                                   "hashtogram,explicit,cms")
    bench_parser.add_argument("--workers", default="1,2,4",
                              help="comma-separated worker counts to sweep")
    bench_parser.add_argument("--num-users", type=int, default=200_000)
    bench_parser.add_argument("--domain-size", type=int, default=1 << 16)
    bench_parser.add_argument("--epsilon", type=float, default=1.0)
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--repeats", type=int, default=1,
                              help="timings keep the best of this many runs")
    bench_parser.add_argument("--output", default="BENCH_engine.json")
    bench_parser.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
