"""Command-line interface for running the reproduction's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli list                    # show the available experiments
    python -m repro.cli run table1              # regenerate Table 1
    python -m repro.cli run grouposition        # Section 4 experiment
    python -m repro.cli run table1 --quick      # smaller, faster configuration
    python -m repro.cli quickstart              # the README quickstart, end to end
    python -m repro.cli simulate --shards 4     # sharded wire-API aggregation
    python -m repro.cli simulate --workers 4    # multiprocess engine simulation
    python -m repro.cli bench                   # engine scaling -> BENCH_engine.json
    python -m repro.cli serve --port 7071       # asyncio report-ingestion server
    python -m repro.cli serve-cluster --shards 3    # router + 3 shard servers
    python -m repro.cli load-test --users 100000 --workers 4
    python -m repro.cli load-test --wire-format binary   # zero-copy frames
    python -m repro.cli load-test --cluster 3   # sharded cluster, bit-identical
    python -m repro.cli load-test --cluster 2 --transport shm  # shm shard links
    python -m repro.cli load-test --cluster 2 --epochs 4 \
        --membership add:0.33,drain:0.66        # grow + drain mid-stream
    python -m repro.cli cluster-ctl add-shard --server 127.0.0.1:7070
    python -m repro.cli cluster-ctl drain-shard --shard 0 --server 127.0.0.1:7070
    python -m repro.cli cluster-ctl rolling-restart --server 127.0.0.1:7070
    python -m repro.cli chaos-test --membership --transport shm
    python -m repro.cli matrix list             # YAML experiment matrices
    python -m repro.cli matrix run experiments/configs/quick.yaml
    python -m repro.cli matrix render experiments/configs/paper.yaml --quick
    python -m repro.cli --list-modules          # module map (checked against docs)

``run`` prints the same tables that ``pytest benchmarks/ --benchmark-only``
produces; the quick configurations (``--quick``) are what the matrix
runner's paper config (``matrix render experiments/configs/paper.yaml
--quick``) records in EXPERIMENTS.md at the repository root.

``matrix`` is the YAML-driven sweep harness (:mod:`repro.experiments.matrix`):
a config declares axes (protocol x epsilon x domain size x distribution x
workers x shards x wire format x transport), each expanded cell runs the
offline engine and — for cells with shards >= 1 — a live server or cluster
that must answer bit-identically; committed tables land under
``docs/experiments/`` and are drift-checked in CI (see docs/experiments.md).

``simulate`` drives the client/server wire API end to end: publish public
parameters, encode one report per user, ingest the report stream, merge, and
estimate.  ``--shards K`` scatters the reports over K in-process shard
aggregators; ``--workers N`` runs the multiprocess engine
(:mod:`repro.engine`) instead — its estimates are bit-identical for every N
under the same seed.  ``bench`` sweeps the engine over worker counts and
writes the measured throughput to ``BENCH_engine.json``.

``serve`` runs the long-lived asyncio ingestion service
(:mod:`repro.server`): it publishes its parameters to any connecting client,
drains report frames through a bounded queue, answers live queries, and
checkpoints durable snapshots.  ``load-test`` spawns such a server, drives
the engine's canonical chunk stream at it over ``--workers`` concurrent
connections, and verifies the *served* estimates are bit-identical to the
offline :func:`repro.engine.run_simulation` reference under the same seed.
Both speak either ``reports`` wire format (``--wire-format``): the
compatibility-default JSON frames or the zero-copy binary columnar frames
of ``docs/wire-protocol.md`` §8 — bit-identical aggregates either way.

``serve-cluster`` scales ``serve`` horizontally (:mod:`repro.cluster`): a
router process hash-partitions ``reports`` frames across ``--shards``
freshly spawned shard servers, answers queries by pulling and exactly
merging every shard's integer state, and restarts a dead shard from its
snapshot (replaying the router's frame journal).  ``load-test --cluster K``
drives such a cluster through the very same client code path and asserts
the served estimates still equal the offline engine bit for bit.

The ``--list-modules`` flag (usable without a subcommand) prints the package
module map; with ``--check docs/architecture.md`` it verifies the map
embedded in the architecture document has not drifted (CI runs this).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import (
    ComposedRRConfig,
    ErrorCurveConfig,
    FrequencyOracleConfig,
    GenProtConfig,
    GroupositionConfig,
    HashingAblationConfig,
    HashtogramAblationConfig,
    ListRecoveryConfig,
    LowerBoundConfig,
    MaxInformationConfig,
    Table1Config,
    format_table,
    run_composed_rr,
    run_error_vs_beta,
    run_error_vs_epsilon,
    run_error_vs_n,
    run_frequency_oracle,
    run_genprot,
    run_grouposition,
    run_hashing_ablation,
    run_hashtogram_ablation,
    run_list_recovery,
    run_lower_bound,
    run_max_information,
    run_table1,
)


def _table1(quick: bool):
    config = Table1Config()
    if quick:
        config = Table1Config(num_users=15_000, domain_size=1 << 16,
                              scan_domain_size=1 << 10,
                              heavy_fractions=[0.35, 0.25])
    return [("T1: Table 1 (measured)", run_table1(config))]


def _error_vs_beta(quick: bool):
    config = ErrorCurveConfig()
    if quick:
        config = ErrorCurveConfig(num_users=15_000, domain_size=1 << 16,
                                  betas=[0.2, 0.01],
                                  probe_fractions=[0.12, 0.2, 0.3])
    return [("E1: detection threshold vs beta", run_error_vs_beta(config))]


def _error_vs_n(quick: bool):
    config = ErrorCurveConfig()
    if quick:
        config = ErrorCurveConfig(domain_size=1 << 16,
                                  num_users_sweep=[8_000, 16_000])
    return [("E2: error vs n", run_error_vs_n(config))]


def _error_vs_epsilon(quick: bool):
    config = ErrorCurveConfig()
    if quick:
        config = ErrorCurveConfig(num_users=15_000, domain_size=1 << 16,
                                  epsilon_sweep=[2.0, 8.0])
    return [("E3: error vs epsilon", run_error_vs_epsilon(config))]


def _frequency_oracle(quick: bool):
    config = FrequencyOracleConfig()
    if quick:
        config = FrequencyOracleConfig(num_users=8_000,
                                       domain_sizes=[1 << 8, 1 << 14],
                                       num_queries=60)
    return [("E4: frequency-oracle error", run_frequency_oracle(config))]


def _grouposition(quick: bool):
    config = GroupositionConfig()
    if quick:
        config = GroupositionConfig(group_sizes=[4, 64, 256], num_samples=8_000)
    return [("E5: advanced grouposition", run_grouposition(config))]


def _max_information(quick: bool):
    config = MaxInformationConfig()
    if quick:
        config = MaxInformationConfig(num_users_sweep=[100, 1_000],
                                      empirical_users=60,
                                      empirical_samples=500)
    return [("E6: max-information", run_max_information(config))]


def _composed_rr(quick: bool):
    config = ComposedRRConfig()
    if quick:
        config = ComposedRRConfig(num_bits_sweep=[8, 32, 128])
    return [("E7: composed randomized response", run_composed_rr(config))]


def _genprot(quick: bool):
    config = GenProtConfig()
    if quick:
        config = GenProtConfig(num_users=800, privacy_trials=800)
    return [("E8: GenProt transformation", run_genprot(config))]


def _lower_bound(quick: bool):
    config = LowerBoundConfig()
    if quick:
        config = LowerBoundConfig(num_users=3_000, num_trials=80,
                                  betas=[0.3, 0.1], anticoncentration_bits=200)
    results = run_lower_bound(config)
    return [("E9a: counting lower bound", results["counting"]),
            ("E9b: anti-concentration", results["anti_concentration"])]


def _list_recovery(quick: bool):
    config = ListRecoveryConfig()
    if quick:
        config = ListRecoveryConfig(num_coordinates=10, num_codewords=3,
                                    corrupted_fractions=[0.0, 0.2, 0.5],
                                    num_trials=2)
    return [("E10: list recovery", run_list_recovery(config))]


def _ablation_hashing(quick: bool):
    config = HashingAblationConfig()
    if quick:
        config = HashingAblationConfig(num_users=15_000, domain_size=1 << 16,
                                       betas=[0.2, 0.02],
                                       heavy_fractions=[0.35, 0.25])
    return [("A1: hashing-structure ablation", run_hashing_ablation(config))]


def _ablation_hashtogram(quick: bool):
    config = HashtogramAblationConfig()
    if quick:
        config = HashtogramAblationConfig(num_users=6_000, domain_size=1 << 14,
                                          bucket_counts=[32, 256],
                                          repetition_counts=[1, 5],
                                          num_queries=40)
    return [("A2: Hashtogram ablation", run_hashtogram_ablation(config))]


#: experiment name -> (description, runner)
EXPERIMENTS: Dict[str, Tuple[str, Callable[[bool], List[Tuple[str, list]]]]] = {
    "table1": ("Table 1 protocol comparison (T1)", _table1),
    "error-vs-beta": ("Detection threshold vs failure probability (E1)", _error_vs_beta),
    "error-vs-n": ("Estimation error vs number of users (E2)", _error_vs_n),
    "error-vs-epsilon": ("Estimation error vs privacy parameter (E3)", _error_vs_epsilon),
    "frequency-oracle": ("Frequency-oracle accuracy (E4)", _frequency_oracle),
    "grouposition": ("Advanced grouposition (E5)", _grouposition),
    "max-information": ("Max-information bounds (E6)", _max_information),
    "composed-rr": ("Composition for randomized response (E7)", _composed_rr),
    "genprot": ("GenProt approximate-to-pure transformation (E8)", _genprot),
    "lower-bound": ("Error lower bound and anti-concentration (E9)", _lower_bound),
    "list-recovery": ("Unique list recovery under corruption (E10)", _list_recovery),
    "ablation-hashing": ("Hashing-structure ablation (A1)", _ablation_hashing),
    "ablation-hashtogram": ("Hashtogram bucket/repetition ablation (A2)", _ablation_hashtogram),
}


def _cmd_list(_args) -> int:
    print("available experiments:")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:<22s} {description}")
    return 0


def _cmd_run(args) -> int:
    name = args.experiment
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; use `list` to see the options",
              file=sys.stderr)
        return 2
    _, runner = EXPERIMENTS[name]
    for title, rows in runner(args.quick):
        print()
        print(format_table(rows, title=title))
    return 0


def _cmd_simulate(args) -> int:
    """Drive the wire API: params -> encode -> (sharded | multiprocess) -> merge."""
    import time

    from repro.analysis.metrics import true_frequencies
    from repro.engine import run_simulation
    from repro.engine.bench import build_bench_params
    from repro.protocol import merge_aggregators
    from repro.utils.rng import as_generator
    from repro.workloads.distributions import zipf_workload

    if args.shards is not None and args.workers is not None:
        print("simulate: --shards (in-process) and --workers (multiprocess "
              "engine) are mutually exclusive", file=sys.stderr)
        return 2
    shards = args.shards if args.shards is not None else 4
    if shards < 1:
        print("simulate: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("simulate: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.num_users < 1:
        print("simulate: --num-users must be at least 1", file=sys.stderr)
        return 2

    gen = as_generator(args.seed)
    domain_size = args.domain_size
    values = zipf_workload(args.num_users, domain_size,
                           support=min(2_000, domain_size), rng=gen)
    params = build_bench_params(args.protocol, domain_size, args.epsilon,
                                args.num_users, rng=gen)

    if args.workers is not None:
        # Multiprocess engine: the chunk plan and per-chunk seeds are drawn
        # from `gen` before any work is scheduled, so the estimates are
        # bit-identical for every --workers value.
        result = run_simulation(params, values, rng=gen, workers=args.workers)
        oracle = result.finalize()
        mode = (f"{args.workers} engine worker(s), "
                f"{result.num_chunks} chunk(s)")
        timing = (f"engine encode+ingest: {result.ingest_s:.3f}s; merge: "
                  f"{result.merge_s:.3f}s ({result.reports_per_s:,.0f} reports/s)")
    else:
        encode_start = time.perf_counter()
        batch = params.make_encoder().encode_batch(values, gen)
        encode_elapsed = time.perf_counter() - encode_start

        shard_aggs = [params.make_aggregator() for _ in range(shards)]
        ingest_start = time.perf_counter()
        for shard_agg, part in zip(shard_aggs, batch.split(shards), strict=True):
            shard_agg.absorb_batch(part)
        ingest_elapsed = time.perf_counter() - ingest_start
        oracle = merge_aggregators(shard_aggs).finalize()
        mode = f"{shards} shard(s)"
        throughput = args.num_users / max(ingest_elapsed, 1e-9)
        timing = (f"client encoding: {encode_elapsed:.3f}s; sharded ingestion: "
                  f"{ingest_elapsed:.3f}s ({throughput:,.0f} reports/s)")

    truth = true_frequencies(values)
    top = sorted(truth.items(), key=lambda kv: -kv[1])[:5]
    queries = [x for x, _ in top]
    estimates = oracle.estimate_many(queries)
    rows = [{"item": x, "true_count": truth[x], "estimate": round(float(a), 1)}
            for x, a in zip(queries, estimates, strict=True)]
    print(format_table(rows, title=(
        f"simulate: {args.protocol} over {mode}, "
        f"n={args.num_users}, |X|={domain_size}, eps={args.epsilon}")))
    print(f"\nreport size: {params.report_bits:.1f} bits/user; "
          f"server state: {oracle.server_state_size} scalars")
    print(timing)
    return 0


def _cmd_bench(args) -> int:
    """Engine scaling sweep; writes the measured payload to BENCH_engine.json."""
    import json
    from pathlib import Path

    from repro.engine.bench import BENCH_PROTOCOLS, run_engine_bench

    try:
        worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    except ValueError:
        print("bench: --workers must be a comma-separated list of integers",
              file=sys.stderr)
        return 2
    if not worker_counts or any(w < 1 for w in worker_counts):
        print("bench: worker counts must be positive", file=sys.stderr)
        return 2
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    unknown = [p for p in protocols if p not in BENCH_PROTOCOLS]
    if not protocols or unknown:
        print(f"bench: --protocols must be a non-empty subset of "
              f"{','.join(BENCH_PROTOCOLS)}" +
              (f" (got {','.join(unknown)})" if unknown else ""),
              file=sys.stderr)
        return 2

    # `--wire-format json` keeps the legacy object result channel (worker
    # aggregators pickle whole, parameters travelling as their JSON payload);
    # `binary` ships packed integer-state blobs (repro.protocol.binary).
    result_format = "binary" if args.wire_format == "binary" else "pickle"
    payload = run_engine_bench(protocols=protocols, worker_counts=worker_counts,
                               num_users=args.num_users,
                               domain_size=args.domain_size,
                               epsilon=args.epsilon, seed=args.seed,
                               repeats=args.repeats,
                               result_format=result_format)
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")

    print(format_table(payload["results"], title=(
        f"bench: engine scaling, n={args.num_users}, |X|={args.domain_size}, "
        f"eps={args.epsilon}, cpu_count={payload['host']['cpu_count']}")))
    print(f"\nwrote {output}")
    if not all(row["identical_to_1_worker"] for row in payload["results"]):
        print("bench: parallel estimates diverged from the 1-worker run",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    """Run the asyncio report-ingestion server until shutdown."""
    import asyncio
    import json
    from pathlib import Path

    from repro.engine.bench import build_bench_params
    from repro.protocol import PublicParams
    from repro.server import AggregationServer

    if args.window is not None and args.window < 1:
        print("serve: --window must be at least 1", file=sys.stderr)
        return 2
    wire_formats = (("json", "binary") if args.wire_format == "both"
                    else (args.wire_format,))
    if args.restore is not None:
        if args.params_file is not None:
            print("serve: --restore carries its own parameters; it cannot be "
                  "combined with --params-file", file=sys.stderr)
            return 2
        server = AggregationServer.restore(args.restore,
                                           snapshot_dir=args.snapshot_dir,
                                           snapshot_format=args.snapshot_format,
                                           wire_formats=wire_formats)
        if args.window is not None:
            # Operator override: tighten (or widen) retention on restart.
            server.windowed.set_window(args.window)
    else:
        if args.params_file is not None:
            payload = json.loads(Path(args.params_file).read_text())
            params = PublicParams.from_dict(payload)
        else:
            params = build_bench_params(args.protocol, args.domain_size,
                                        args.epsilon, args.num_users,
                                        rng=args.seed)
        server = AggregationServer(params, window=args.window,
                                   snapshot_dir=args.snapshot_dir,
                                   snapshot_format=args.snapshot_format,
                                   wire_formats=wire_formats)

    shm_name = args.shm_name
    if args.transport == "shm" and not shm_name:
        import os
        shm_name = f"repro-serve-{os.getpid()}"

    async def main() -> None:
        host, port = await server.start(args.host, args.port,
                                        transport=args.transport,
                                        shm_name=shm_name,
                                        acceptors=args.acceptors)
        # Parse-friendly readiness line: `load-test` and the tests wait for it.
        print(f"LISTENING {host} {port}", flush=True)
        if not args.quiet:
            print(f"serve: protocol={server.params.protocol} "
                  f"window={server.windowed.window} "
                  f"wire_formats={','.join(server.wire_formats)} "
                  f"transport={args.transport}"
                  + (f" shm_name={shm_name}" if shm_name else "") +
                  f" snapshot_dir={args.snapshot_dir} "
                  f"restored_reports={server.windowed.num_reports}", flush=True)
        await server.serve_until_stopped()
        if not args.quiet:
            print(f"serve: stopped after absorbing "
                  f"{server.windowed.num_reports} reports", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve_cluster(args) -> int:
    """Run a router in front of N freshly spawned shard servers."""
    import asyncio
    import json
    import tempfile
    from pathlib import Path

    from repro.cluster import ClusterRouter, ClusterSupervisor
    from repro.engine.bench import build_bench_params
    from repro.protocol import PublicParams

    if args.shards < 1:
        print("serve-cluster: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.window is not None and args.window < 1:
        print("serve-cluster: --window must be at least 1", file=sys.stderr)
        return 2
    if args.checkpoint_reports < 1:
        print("serve-cluster: --checkpoint-reports must be at least 1",
              file=sys.stderr)
        return 2
    if args.params_file is not None:
        payload = json.loads(Path(args.params_file).read_text())
        params = PublicParams.from_dict(payload)
    else:
        params = build_bench_params(args.protocol, args.domain_size,
                                    args.epsilon, args.num_users,
                                    rng=args.seed)
    ephemeral_base = args.base_dir is None
    base_dir = args.base_dir or tempfile.mkdtemp(prefix="repro-cluster-")
    wire_formats = (("json", "binary") if args.wire_format == "both"
                    else (args.wire_format,))
    supervisor = ClusterSupervisor(params, args.shards, base_dir,
                                   window=args.window,
                                   wire_format=args.wire_format,
                                   snapshot_format=args.snapshot_format,
                                   transport=args.transport)
    try:
        supervisor.start()
        router = ClusterRouter(params, supervisor=supervisor, rng=args.seed,
                               wire_formats=wire_formats,
                               checkpoint_reports=args.checkpoint_reports,
                               window=args.window,
                               transport=args.transport)

        async def main() -> None:
            host, port = await router.start(args.host, args.port)
            # Same parse-friendly readiness line as `serve`: `load-test
            # --cluster` and the tests wait for it.
            print(f"LISTENING {host} {port}", flush=True)
            if not args.quiet:
                endpoints = ",".join(f"{h}:{p}"
                                     for h, p in supervisor.endpoints())
                print(f"serve-cluster: protocol={params.protocol} "
                      f"shards={args.shards} window={args.window} "
                      f"wire_formats={','.join(wire_formats)} "
                      f"transport={args.transport} "
                      f"base_dir={base_dir} endpoints={endpoints}", flush=True)
            await router.serve_until_stopped()
            if not args.quiet:
                print(f"serve-cluster: stopped after forwarding "
                      f"{router.stats.reports_forwarded} reports "
                      f"({router.stats.shard_restarts} shard restart(s))",
                      flush=True)

        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
        if ephemeral_base:
            # The default base dir is a fresh temp directory; snapshots in
            # it only serve intra-run crash recovery, so remove it on exit
            # (pass --base-dir to keep the cluster home across runs).
            import shutil
            shutil.rmtree(base_dir, ignore_errors=True)
    return 0


def _spawn_server(params, extra_args: Sequence[str] = (),
                  verb: str = "serve") -> Tuple[object, str, int]:
    """Start a ``repro.cli`` server subprocess; returns (proc, host, port).

    ``verb`` selects the service flavor (``serve`` or ``serve-cluster``);
    either way the child is waited on until its ``LISTENING`` line appears
    (see :func:`repro.cluster.supervisor.spawn_server_process`).
    """
    import json
    import os
    import tempfile

    from repro.cluster.supervisor import spawn_server_process

    with tempfile.NamedTemporaryFile("w", suffix="-params.json",
                                     delete=False) as handle:
        json.dump(params.to_dict(), handle)
        params_file = handle.name
    try:
        return spawn_server_process(verb, params_file, extra_args)
    finally:
        # The LISTENING line is printed after the child loaded the
        # parameters, so the file is safe to remove on every path.
        os.unlink(params_file)


def _parse_membership_script(text: str) -> List[Tuple[float, str, int]]:
    """Parse ``add:FRAC`` / ``drain:FRAC[:SHARD]`` comma lists.

    ``FRAC`` is the fraction of the batch stream already sent when the
    transition fires (strictly between 0 and 1).  ``drain`` defaults to
    shard 0.  Example: ``add:0.33,drain:0.66`` grows the cluster a third
    of the way in and drains shard 0 at two thirds.
    """
    script: List[Tuple[float, str, int]] = []
    for item in text.split(","):
        parts = item.strip().split(":")
        if len(parts) < 2 or parts[0] not in ("add", "drain"):
            raise ValueError(
                f"--membership entries must be add:FRAC or "
                f"drain:FRAC[:SHARD], got {item.strip()!r}")
        op = parts[0]
        try:
            fraction = float(parts[1])
        except ValueError as exc:
            raise ValueError(f"bad fraction in {item.strip()!r}") from exc
        if not 0.0 < fraction < 1.0:
            raise ValueError(
                f"membership fractions must be strictly between 0 and 1, "
                f"got {fraction} in {item.strip()!r}")
        shard = 0
        if len(parts) > 2:
            if op != "drain":
                raise ValueError(f"only drain takes a shard id "
                                 f"({item.strip()!r})")
            shard = int(parts[2])
        script.append((fraction, op, shard))
    if not script:
        raise ValueError("--membership needs at least one transition")
    return sorted(script)


def _cmd_load_test(args) -> int:
    """Drive a live server with the engine's chunk stream; verify bit-identity."""
    import os
    import threading
    import time

    import numpy as np

    from repro.analysis.metrics import true_frequencies
    from repro.engine import encode_stream, make_plan, run_simulation
    from repro.engine.bench import build_bench_params
    from repro.server import AggregationClient
    from repro.utils.rng import as_generator
    from repro.workloads.distributions import zipf_workload

    users = args.users
    workers = args.workers
    if args.quick:
        users = min(users, 20_000)
        workers = min(workers, 2)
    if users < 1 or workers < 1 or args.epochs < 1:
        print("load-test: --users, --workers, and --epochs must be positive",
              file=sys.stderr)
        return 2
    if args.cluster is not None and args.server is not None:
        print("load-test: --cluster spawns its own router; it cannot be "
              "combined with --server", file=sys.stderr)
        return 2
    if args.server is not None and args.transport != "tcp":
        print("load-test: --transport selects how the *spawned* server is "
              "started; it cannot be combined with --server", file=sys.stderr)
        return 2
    if args.cluster is not None and args.cluster < 1:
        print("load-test: --cluster must be at least 1", file=sys.stderr)
        return 2
    membership_script: Optional[List[Tuple[float, str, int]]] = None
    if args.membership is not None:
        if args.cluster is None:
            print("load-test: --membership scripts cluster transitions; it "
                  "requires --cluster", file=sys.stderr)
            return 2
        try:
            membership_script = _parse_membership_script(args.membership)
        except ValueError as exc:
            print(f"load-test: {exc}", file=sys.stderr)
            return 2
        if workers != 1:
            # Membership cuts are epoch-ordered; one ordered connection
            # keeps "which frames saw which map" deterministic.
            workers = 1

    # Same parameter/workload derivation as `simulate`, then one shared seed
    # for the canonical chunk plan: the wire stream and the offline engine
    # replay identical per-chunk client randomness.
    gen = as_generator(args.seed)
    domain_size = args.domain_size
    values = zipf_workload(users, domain_size,
                           support=min(2_000, domain_size), rng=gen)
    params = build_bench_params(args.protocol, domain_size, args.epsilon,
                                users, rng=gen)
    plan_seed = int(gen.integers(0, 2**63 - 1))

    # Membership mode needs stream *granularity*: the scripted transitions
    # land between two batches, so a handful of engine-default megabatches
    # would degenerate "mid-stream" to "before everything".  The explicit
    # chunk size is shared by all three derivations below, which is all
    # bit-identity requires.
    chunk_size = max(1, users // 24) if membership_script is not None else None

    offline = run_simulation(params, values,
                             rng=np.random.default_rng(plan_seed),
                             chunk_size=chunk_size).finalize()

    encode_start = time.perf_counter()
    batches = list(encode_stream(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=chunk_size))
    encode_s = time.perf_counter() - encode_start
    # Shard-routing keys from the canonical plan (one batch per chunk; a
    # fresh generator with the same seed replays the identical plan the
    # stream used).  A cluster router partitions on them; a single server
    # ignores them.
    routes = [chunk.route_key for chunk in
              make_plan(params, users, rng=np.random.default_rng(plan_seed),
                        chunk_size=chunk_size)]

    proc = None
    if args.server is not None:
        host, sep, port_text = args.server.rpartition(":")
        if not sep or not host or not port_text.isdigit():
            print(f"load-test: --server must be HOST:PORT "
                  f"(got {args.server!r})", file=sys.stderr)
            return 2
        port = int(port_text)
    elif args.cluster is not None:
        # The transport flag selects how the router reaches its shards
        # (shm rings vs TCP loopback); this client always drives the
        # router's TCP endpoint — the answers must be identical either way.
        proc, host, port = _spawn_server(
            params, ("--shards", str(args.cluster),
                     "--transport", args.transport), verb="serve-cluster")
    else:
        extra: Tuple[str, ...] = ()
        if args.transport != "tcp":
            extra = ("--transport", args.transport)
        proc, host, port = _spawn_server(params, extra)
    server_stopped = False
    try:
        # hello doubles as wire-format negotiation: a server that does not
        # accept this run's format fails here, not batch by silent batch.
        with AggregationClient(host, port,
                               wire_format=args.wire_format) as probe:
            published = probe.hello()
        if published != params:
            print("load-test: the server's published parameters do not match "
                  "this run's; refusing to stream mismatched reports.  Start "
                  "the server from this run's exact parameters (`load-test` "
                  "without --server does this automatically, or use `serve "
                  "--params-file` with the same payload)", file=sys.stderr)
            return 1
        # One connection per worker; chunks round-robin over the workers and
        # (if --epochs > 1) over the epoch tags — any interleaving must
        # produce the same merged aggregate.
        failures: List[str] = []
        membership_log: List[Dict[str, object]] = []

        def send_span(worker: int) -> None:
            try:
                with AggregationClient(host, port,
                                       wire_format=args.wire_format) as client:
                    for i in range(worker, len(batches), workers):
                        client.send_batch(batches[i], epoch=i % args.epochs,
                                          route=routes[i])
                    # Per-connection barrier: frames on one connection are
                    # processed in order, so this returns only after every
                    # batch this worker sent has been absorbed.
                    client.sync()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(f"worker {worker}: {exc}")

        def send_scripted() -> None:
            """Ordered stream with mid-flight membership transitions.

            Epochs are *banded* (monotone over the stream) instead of
            round-robin: an ``add`` cuts the partition at the next unseen
            epoch, so banding is what routes post-add traffic through the
            new shard.  The transitions fire between two sends — online,
            while the stream is live — and the bit-identity check below is
            what makes them count.
            """
            ops = {}
            for fraction, op, shard in membership_script:
                index = min(len(batches) - 1, int(fraction * len(batches)))
                ops.setdefault(index, []).append((op, shard))
            try:
                with AggregationClient(host, port,
                                       wire_format=args.wire_format) as client:
                    for i in range(len(batches)):
                        for op, shard in ops.pop(i, []):
                            if op == "add":
                                membership_log.append(client.add_shard())
                            else:
                                membership_log.append(
                                    client.drain_shard(shard))
                        client.send_batch(
                            batches[i],
                            epoch=(i * args.epochs) // len(batches),
                            route=routes[i])
                    client.sync()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(f"membership stream: {exc}")

        ingest_start = time.perf_counter()
        if membership_script is not None:
            send_scripted()
        else:
            threads = [threading.Thread(target=send_span, args=(w,))
                       for w in range(workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        client = AggregationClient(host, port)
        absorbed = client.sync()
        ingest_s = time.perf_counter() - ingest_start
        if failures:
            print("load-test: " + "; ".join(failures), file=sys.stderr)
            return 1
        if absorbed != users:
            print(f"load-test: server absorbed {absorbed} of {users} reports",
                  file=sys.stderr)
            return 1

        truth = true_frequencies(values)
        top = sorted(truth.items(), key=lambda kv: -kv[1])[:5]
        probe = np.random.default_rng(0).integers(0, domain_size,
                                                  size=args.queries)
        queries = [int(x) for x, _ in top] + [int(x) for x in probe]
        served = client.query(queries)
        expected = offline.estimate_many(queries)
        identical = bool(np.array_equal(served, expected))
        stats = client.stats()
        final_map: Optional[Dict[str, object]] = None
        if membership_script is not None:
            final_map = dict(client.shard_map()["map"])
        if proc is not None:
            client.shutdown()
            server_stopped = True
        client.close()

        rows = [{"item": x, "true_count": truth.get(x, 0),
                 "served_estimate": round(float(a), 1)}
                for x, a in list(zip(queries, served, strict=True))[:5]]
        target = (f"cluster of {args.cluster} shard(s) at {host}:{port}, "
                  f"{args.transport} shard links"
                  if args.cluster is not None else f"server {host}:{port}")
        print(format_table(rows, title=(
            f"load-test: {args.protocol} x {users} users over {workers} "
            f"connection(s), {args.epochs} epoch(s), "
            f"{args.wire_format} frames, {target}")))
        print(f"\nclient encoding: {encode_s:.3f}s; wire ingest+sync: "
              f"{ingest_s:.3f}s ({users / max(ingest_s, 1e-9):,.0f} reports/s "
              f"end-to-end); server drain: {stats['drain_s']:.3f}s "
              f"({int(stats['reports_absorbed']) / max(float(stats['drain_s']), 1e-9):,.0f} "
              f"reports/s absorb)")
        if membership_script is not None and final_map is not None:
            op_rows = [{"reply": entry.get("type"),
                        "shard": entry.get("shard", "-"),
                        "target": entry.get("target", "-"),
                        "cut_epoch": entry.get("cut_epoch", "-"),
                        "handoff": entry.get("handoff", "-"),
                        "map_version": entry.get("map_version", "-")}
                       for entry in membership_log]
            print(format_table(op_rows, title=(
                f"membership transitions mid-stream "
                f"(final map version {final_map.get('version')}, "
                f"retired {final_map.get('retired')})")))
        print(f"served == offline engine ({len(queries)} queries): "
              f"{'BIT-IDENTICAL' if identical else 'MISMATCH'}")
        if not identical:
            worst = int(np.argmax(np.abs(served - expected)))
            print(f"load-test: first divergence at item {queries[worst]}: "
                  f"served {served[worst]!r} != offline {expected[worst]!r}",
                  file=sys.stderr)
            return 1
        if membership_script is not None and final_map is not None:
            # The scripted transitions must all have *landed*: every
            # drained shard retired, every added shard active.
            statuses = {int(s["id"]): s["status"]
                        for s in final_map.get("shards", [])}
            retired = {int(x) for x in final_map.get("retired", [])}
            for _, op, shard in membership_script:
                if op == "drain" and shard not in retired:
                    print(f"load-test: scripted drain of shard {shard} did "
                          f"not retire it (map: {statuses}, retired: "
                          f"{sorted(retired)})", file=sys.stderr)
                    return 1
            added = sum(1 for _, op, _ in membership_script if op == "add")
            new_ids = [sid for sid, status in statuses.items()
                       if sid >= args.cluster and status == "active"]
            if len(new_ids) != added:
                print(f"load-test: scripted {added} add(s) but the final "
                      f"map activates {new_ids}", file=sys.stderr)
                return 1
        return 0
    finally:
        if proc is not None:
            # After an acknowledged `shutdown` frame, give the child a
            # grace period to exit on its own: `serve-cluster` still has
            # to stop its shards and remove its ephemeral base dir, and an
            # immediate SIGTERM would race that cleanup.
            import subprocess
            try:
                if server_stopped:
                    proc.wait(timeout=10)
                else:
                    proc.terminate()
                    proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.terminate()
                proc.wait(timeout=10)
            proc.stdout.close()


def _cmd_chaos_test(args) -> int:
    """Seeded fault-injection run; the faulted cluster must stay exact."""
    import numpy as np

    from repro.chaos import ChaosRunner, FaultSchedule

    if args.cluster < 1:
        print("chaos-test: --cluster must be at least 1", file=sys.stderr)
        return 2
    if args.membership and args.cluster < 2:
        print("chaos-test: --membership drains a shard into a survivor; it "
              "needs --cluster >= 2", file=sys.stderr)
        return 2
    schedule = None
    if args.schedule is not None:
        schedule = FaultSchedule.load(args.schedule)
    # Membership mode fires the three membership kinds plus one kill; the
    # default floor of 5 belongs to the seven-kind wire/process schedule.
    min_kinds = args.min_kinds
    if min_kinds is None:
        min_kinds = 4 if args.membership else 5
    runner = ChaosRunner(
        protocol=args.protocol, domain_size=args.domain_size,
        epsilon=args.epsilon, num_users=args.users,
        num_shards=args.cluster, seed=args.seed,
        wire_format=args.wire_format, schedule=schedule,
        membership=args.membership, transport=args.transport,
        base_dir=args.base_dir)
    result = runner.run()
    schedule = result.schedule
    if args.schedule_out is not None:
        path = schedule.save(args.schedule_out)
        print(f"fault schedule written to {path}")
    rows = [{"target": event.target, "frame": event.frame,
             "kind": event.kind, "arg": event.arg}
            for event in result.fired]
    print(format_table(rows, title=(
        f"chaos-test: {args.protocol} x {result.num_users} users over "
        f"{args.cluster} shard(s), seed {args.seed}, "
        f"{args.wire_format} frames - faults fired")))
    print(f"\nschedule digest: {schedule.digest()} "
          f"(replay with --seed {args.seed})")
    print(f"fault kinds fired: {', '.join(result.fired_kinds)} "
          f"({len(result.fired_kinds)} distinct); shard restarts: "
          f"{result.restarts}; client retries: {result.send_retries}")
    if args.membership:
        info = result.membership
        add_reply = info.get("add") or {}
        drain_reply = info.get("drain") or {}
        final_map = info.get("final_map") or {}
        print(f"membership ({info.get('transport')} shard links): added "
              f"shard {add_reply.get('shard')} at send index "
              f"{info.get('add_frame')} (cut epoch "
              f"{add_reply.get('cut_epoch', '?')}), drained shard "
              f"{drain_reply.get('shard')} into {drain_reply.get('target')} "
              f"at {info.get('drain_frame')} (handoff "
              f"{drain_reply.get('handoff', '?')}, "
              f"{drain_reply.get('num_reports', '?')} reports); final map "
              f"version {final_map.get('version')}, retired "
              f"{final_map.get('retired')}")
        if info.get("torn_journal"):
            print(f"torn journal: {info['torn_journal']}")
        if info.get("corrupt_snapshot"):
            print(f"corrupted snapshot: {info['corrupt_snapshot']}")
    print(f"served == offline engine ({len(result.queries)} queries): "
          f"{'BIT-IDENTICAL' if result.identical else 'MISMATCH'}")
    if not result.identical:
        worst = int(np.argmax(np.abs(result.served - result.expected)))
        print(f"chaos-test: first divergence at item "
              f"{result.queries[worst]}: served {result.served[worst]!r} "
              f"!= offline {result.expected[worst]!r}", file=sys.stderr)
        return 1
    if len(result.fired_kinds) < min_kinds:
        print(f"chaos-test: only {len(result.fired_kinds)} distinct fault "
              f"kinds fired (wanted >= {min_kinds}); the schedule "
              f"barely exercised the cluster", file=sys.stderr)
        return 1
    return 0


def _cmd_cluster_status(args) -> int:
    """Render a live server's (or cluster router's) ``health`` reply."""
    from repro.server import AggregationClient

    host, sep, port_text = args.server.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        print(f"cluster-status: --server must be HOST:PORT "
              f"(got {args.server!r})", file=sys.stderr)
        return 2
    with AggregationClient(host, int(port_text),
                           timeout=args.timeout) as client:
        health = client.health()
    status = str(health.get("status", "ok"))
    print(f"{health.get('server')} at {args.server}: {status}")
    shards = health.get("shards")
    if isinstance(shards, list) and shards:
        rows = []
        for entry in shards:
            rows.append({
                "shard": entry.get("shard"),
                "status": entry.get("status"),
                "endpoint": f"{entry.get('host')}:{entry.get('port')}",
                "queue_depth": entry.get("queue_depth", "-"),
                "num_reports": entry.get("num_reports", "-"),
                "journal_reports": entry.get("journal_reports", 0),
                "seq": entry.get("seq", 0),
                "restarts": entry.get("restarts", "-"),
                "last_fault": (entry.get("last_fault") or "")[:48],
            })
        print(format_table(rows,
                           title=f"cluster-status: {len(rows)} shard(s)"))
    else:
        for key in ("protocol", "queue_depth", "epochs", "num_reports",
                    "state_size", "max_seq"):
            if key in health:
                print(f"{key}: {health[key]}")
    return 0 if status == "ok" else 1


def _cmd_cluster_ctl(args) -> int:
    """Drive a live router's elastic-membership control frames."""
    from repro.server import AggregationClient

    host, sep, port_text = args.server.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        print(f"cluster-ctl: --server must be HOST:PORT "
              f"(got {args.server!r})", file=sys.stderr)
        return 2
    if args.verb == "drain-shard" and args.shard is None:
        print("cluster-ctl: drain-shard needs --shard", file=sys.stderr)
        return 2
    with AggregationClient(host, int(port_text),
                           timeout=args.timeout) as client:
        if args.verb == "shard-map":
            reply = client.shard_map()
            shard_map = reply["map"]
            rows = [{"shard": entry["id"], "status": entry["status"]}
                    for entry in shard_map["shards"]]
            print(format_table(rows, title=(
                f"shard map version {shard_map['version']} "
                f"(retired: {shard_map['retired'] or 'none'})")))
            for entry in shard_map["entries"]:
                cut = entry.get("cut_epoch")
                shard_ids = entry["shard_ids"]
                print(f"  epochs >= {cut if cut is not None else 0}: "
                      f"{len(shard_ids)}-way partition over shards "
                      f"{shard_ids}")
            return 0
        if args.verb == "add-shard":
            reply = client.add_shard()
            print(f"added shard {reply['shard']} at "
                  f"{reply['host']}:{reply['port']}; it owns epochs >= "
                  f"{reply['cut_epoch']} (map version "
                  f"{reply['map_version']})")
            return 0
        if args.verb == "drain-shard":
            reply = client.drain_shard(args.shard, target=args.target)
            already = " (already drained)" if reply.get("already") else ""
            print(f"drained shard {reply['shard']} into shard "
                  f"{reply.get('target')}{already}: handoff "
                  f"{reply.get('handoff', '-')} moved "
                  f"{reply.get('num_reports', 0)} reports exactly "
                  f"(map version {reply['map_version']})")
            return 0
        reply = client.rolling_restart()
        print(f"rolling restart: shards {reply['shards']} checkpointed and "
              f"restarted in sequence (map version {reply['map_version']} "
              f"unchanged)")
        return 0


def _cmd_matrix(args) -> int:
    """YAML-driven experiment matrices (see repro.experiments.matrix)."""
    from repro.experiments.matrix.command import cmd_matrix

    return cmd_matrix(args)


# --------------------------------------------------------------------------------------
# module map (--list-modules)
# --------------------------------------------------------------------------------------

MODULE_MAP_BEGIN = "<!-- module-map:begin (generated by `repro.cli --list-modules`; verified in CI) -->"
MODULE_MAP_END = "<!-- module-map:end -->"


def module_map() -> List[str]:
    """One line per module: dotted name + first docstring line.

    This is the ground truth ``docs/architecture.md`` embeds; CI regenerates
    it with ``--list-modules --check`` so the document cannot silently drift
    from the package layout.
    """
    import importlib
    import pkgutil

    import repro

    names = ["repro"]
    names += sorted(info.name for info in
                    pkgutil.walk_packages(repro.__path__, prefix="repro."))
    lines = []
    for name in names:
        try:
            module = importlib.import_module(name)
            doc = (module.__doc__ or "").strip()
            summary = doc.splitlines()[0].strip() if doc else "(no docstring)"
        except Exception as exc:  # pragma: no cover - broken module
            summary = f"(import failed: {exc})"
        lines.append(f"{name:<38s} {summary}")
    return lines


def _list_modules(check_path: Optional[str]) -> int:
    lines = module_map()
    if check_path is None:
        print("\n".join(lines))
        return 0
    text = Path(check_path).read_text()
    if MODULE_MAP_BEGIN not in text or MODULE_MAP_END not in text:
        print(f"--list-modules --check: {check_path} has no "
              f"module-map markers", file=sys.stderr)
        return 1
    embedded = text.split(MODULE_MAP_BEGIN, 1)[1].split(MODULE_MAP_END, 1)[0]
    embedded_lines = [line.rstrip() for line in embedded.strip().splitlines()
                      if line.strip() and not line.startswith("```")]
    current = [line.rstrip() for line in lines]
    if embedded_lines != current:
        print(f"--list-modules --check: module map in {check_path} is stale; "
              f"regenerate with `python -m repro.cli --list-modules`",
              file=sys.stderr)
        for line in sorted(set(current) - set(embedded_lines)):
            print(f"  missing: {line}", file=sys.stderr)
        for line in sorted(set(embedded_lines) - set(current)):
            print(f"  stale:   {line}", file=sys.stderr)
        return 1
    print(f"--list-modules --check: {check_path} is up to date "
          f"({len(current)} modules)")
    return 0


def _cmd_quickstart(args) -> int:
    from repro import PrivateExpanderSketch, planted_workload

    workload = planted_workload(num_users=args.num_users,
                                domain_size=1 << 20,
                                heavy_fractions=[0.3, 0.22, 0.15], rng=0)
    protocol = PrivateExpanderSketch(domain_size=1 << 20, epsilon=args.epsilon,
                                     beta=0.05)
    result = protocol.run(workload.values, rng=1)
    rows = [{"item": item,
             "estimate": estimate,
             "true_count": workload.true_frequency(item)}
            for item, estimate in result.top(5)]
    print(format_table(rows, title="quickstart: recovered heavy hitters"))
    print(f"\ncommunication per user: "
          f"{result.communication_bits_per_user():.1f} bits; "
          f"epsilon = {result.epsilon}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Heavy Hitters and the Structure of Local Privacy'")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments") \
        .set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment name (see `list`)")
    run_parser.add_argument("--quick", action="store_true",
                            help="use a smaller, faster configuration")
    run_parser.set_defaults(func=_cmd_run)

    quickstart_parser = subparsers.add_parser(
        "quickstart", help="run the README quickstart end to end")
    quickstart_parser.add_argument("--num-users", type=int, default=60_000)
    quickstart_parser.add_argument("--epsilon", type=float, default=4.0)
    quickstart_parser.set_defaults(func=_cmd_quickstart)

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="drive the client/server wire API (sharded or multiprocess)")
    simulate_parser.add_argument("--protocol", default="hashtogram",
                                 choices=["hashtogram", "explicit", "cms"])
    simulate_parser.add_argument("--shards", type=int, default=None,
                                 help="number of in-process shard aggregators "
                                      "(default 4; exclusive with --workers)")
    simulate_parser.add_argument("--workers", type=int, default=None,
                                 help="run the multiprocess engine with this "
                                      "many workers (estimates are "
                                      "bit-identical for every value; "
                                      "exclusive with --shards)")
    simulate_parser.add_argument("--num-users", type=int, default=30_000)
    simulate_parser.add_argument("--domain-size", type=int, default=1 << 16)
    simulate_parser.add_argument("--epsilon", type=float, default=1.0)
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.set_defaults(func=_cmd_simulate)

    bench_parser = subparsers.add_parser(
        "bench",
        help="engine scaling benchmark; writes BENCH_engine.json")
    bench_parser.add_argument("--protocols", default="hashtogram",
                              help="comma-separated subset of "
                                   "hashtogram,explicit,cms")
    bench_parser.add_argument("--workers", default="1,2,4",
                              help="comma-separated worker counts to sweep")
    bench_parser.add_argument("--num-users", type=int, default=200_000)
    bench_parser.add_argument("--domain-size", type=int, default=1 << 16)
    bench_parser.add_argument("--epsilon", type=float, default=1.0)
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--repeats", type=int, default=1,
                              help="timings keep the best of this many runs")
    bench_parser.add_argument("--wire-format", default="binary",
                              choices=["json", "binary"],
                              help="worker->parent result channel: binary "
                                   "packed-state blobs (default) or the "
                                   "legacy pickled-aggregator channel whose "
                                   "parameters travel as their JSON payload")
    bench_parser.add_argument("--output", default="BENCH_engine.json")
    bench_parser.set_defaults(func=_cmd_bench)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the asyncio report-ingestion server (repro.server)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7071,
                              help="TCP port (0 picks a free port; the bound "
                                   "port is printed on the LISTENING line)")
    serve_parser.add_argument("--protocol", default="hashtogram",
                              choices=["hashtogram", "explicit", "cms"])
    serve_parser.add_argument("--domain-size", type=int, default=1 << 16)
    serve_parser.add_argument("--epsilon", type=float, default=1.0)
    serve_parser.add_argument("--num-users", type=int, default=30_000,
                              help="population hint used to size the "
                                   "sampled parameters' bucket counts")
    serve_parser.add_argument("--seed", type=int, default=0,
                              help="seed of the sampled public randomness")
    serve_parser.add_argument("--params-file", default=None,
                              help="serve these exact public parameters "
                                   "(JSON from PublicParams.to_dict) instead "
                                   "of sampling fresh ones")
    serve_parser.add_argument("--window", type=int, default=None,
                              help="retain only the last W epochs "
                                   "(default: unbounded)")
    serve_parser.add_argument("--snapshot-dir", default=None,
                              help="directory for durable snapshots "
                                   "(enables the snapshot frame)")
    serve_parser.add_argument("--snapshot-format", default="json",
                              choices=["json", "binary"],
                              help="on-disk snapshot encoding (restore "
                                   "sniffs the format, so either kind of "
                                   "file restores)")
    serve_parser.add_argument("--wire-format", default="both",
                              choices=["json", "binary", "both"],
                              help="reports frame formats to accept "
                                   "(advertised in the hello reply; "
                                   "default: both)")
    serve_parser.add_argument("--transport", default="tcp",
                              choices=["tcp", "shm"],
                              help="with 'shm', additionally bind a "
                                   "same-host shared-memory accept endpoint "
                                   "(docs/transport.md); the TCP endpoint "
                                   "and its LISTENING line are kept")
    serve_parser.add_argument("--shm-name", default=None,
                              help="shm control-segment name to bind "
                                   "(default with --transport shm: "
                                   "repro-serve-<pid>)")
    serve_parser.add_argument("--acceptors", type=int, default=1,
                              help="number of SO_REUSEPORT acceptor sockets "
                                   "sharing the TCP port (multi-core "
                                   "ingest; default 1)")
    serve_parser.add_argument("--restore", default=None,
                              help="start from this windowed snapshot file "
                                   "(parameters and window come from the "
                                   "snapshot; --window overrides retention, "
                                   "the parameter-sampling flags are unused)")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="print only the LISTENING line")
    serve_parser.set_defaults(func=_cmd_serve)

    cluster_parser = subparsers.add_parser(
        "serve-cluster",
        help="run a sharded cluster: a router fronting N shard servers "
             "(repro.cluster)")
    cluster_parser.add_argument("--shards", type=int, default=3,
                                help="number of shard server subprocesses")
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument("--port", type=int, default=7070,
                                help="router TCP port (0 picks a free port; "
                                     "shards always bind free ports)")
    cluster_parser.add_argument("--protocol", default="hashtogram",
                                choices=["hashtogram", "explicit", "cms"])
    cluster_parser.add_argument("--domain-size", type=int, default=1 << 16)
    cluster_parser.add_argument("--epsilon", type=float, default=1.0)
    cluster_parser.add_argument("--num-users", type=int, default=30_000,
                                help="population hint used to size the "
                                     "sampled parameters' bucket counts")
    cluster_parser.add_argument("--seed", type=int, default=0,
                                help="seed of the sampled public randomness "
                                     "and the published shard partition")
    cluster_parser.add_argument("--params-file", default=None,
                                help="serve these exact public parameters "
                                     "(JSON from PublicParams.to_dict)")
    cluster_parser.add_argument("--window", type=int, default=None,
                                help="per-shard epoch retention "
                                     "(default: unbounded)")
    cluster_parser.add_argument("--base-dir", default=None,
                                help="cluster home on disk (params file + "
                                     "one snapshot dir per shard; default: "
                                     "a fresh temp directory)")
    cluster_parser.add_argument("--snapshot-format", default="json",
                                choices=["json", "binary"],
                                help="shard snapshot encoding")
    cluster_parser.add_argument("--wire-format", default="both",
                                choices=["json", "binary", "both"],
                                help="reports frame formats the router and "
                                     "its shards accept")
    cluster_parser.add_argument("--transport", default="tcp",
                                choices=["tcp", "shm"],
                                help="router->shard transport: TCP loopback "
                                     "(default) or same-host shared-memory "
                                     "rings (docs/transport.md); answers "
                                     "are bit-identical either way")
    cluster_parser.add_argument("--checkpoint-reports", type=int,
                                default=1 << 16,
                                help="auto-checkpoint a shard once this many "
                                     "reports are journaled for it (bounds "
                                     "replay after a shard crash)")
    cluster_parser.add_argument("--quiet", action="store_true",
                                help="print only the LISTENING line")
    cluster_parser.set_defaults(func=_cmd_serve_cluster)

    load_parser = subparsers.add_parser(
        "load-test",
        help="drive a live server with the engine chunk stream and verify "
             "served == offline engine, bit for bit")
    load_parser.add_argument("--users", type=int, default=100_000)
    load_parser.add_argument("--workers", type=int, default=4,
                             help="concurrent sender connections")
    load_parser.add_argument("--protocol", default="hashtogram",
                             choices=["hashtogram", "explicit", "cms"])
    load_parser.add_argument("--domain-size", type=int, default=1 << 16)
    load_parser.add_argument("--epsilon", type=float, default=1.0)
    load_parser.add_argument("--seed", type=int, default=0)
    load_parser.add_argument("--wire-format", default="json",
                             choices=["json", "binary"],
                             help="reports frame format the sender "
                                  "connections use (binary: zero-copy "
                                  "columnar frames, docs/wire-protocol.md "
                                  "paragraph 8)")
    load_parser.add_argument("--epochs", type=int, default=1,
                             help="spread chunks over this many epoch tags")
    load_parser.add_argument("--queries", type=int, default=64,
                             help="number of sampled probe queries (the top-5 "
                                  "true heavy hitters are always queried)")
    load_parser.add_argument("--server", default=None,
                             help="HOST:PORT of an already-running server "
                                  "(default: spawn one)")
    load_parser.add_argument("--cluster", type=int, default=None, metavar="K",
                             help="spawn a serve-cluster of K shards and "
                                  "drive its router instead of a single "
                                  "server (exclusive with --server)")
    load_parser.add_argument("--transport", default="tcp",
                             choices=["tcp", "shm"],
                             help="transport of the spawned server/cluster: "
                                  "with --cluster the router dials its "
                                  "shards over shm rings instead of TCP "
                                  "loopback; the verified bit-identity must "
                                  "hold either way")
    load_parser.add_argument("--quick", action="store_true",
                             help="CI-sized run (<= 20k users, 2 workers)")
    load_parser.add_argument("--membership", default=None,
                             metavar="SCRIPT",
                             help="script online membership transitions "
                                  "mid-stream (requires --cluster): comma "
                                  "list of add:FRAC and drain:FRAC[:SHARD] "
                                  "at stream fractions, e.g. "
                                  "'add:0.33,drain:0.66'; forces one "
                                  "ordered sender connection, and the "
                                  "final answers must STILL be "
                                  "bit-identical to the offline engine")
    load_parser.set_defaults(func=_cmd_load_test)

    chaos_parser = subparsers.add_parser(
        "chaos-test",
        help="seeded fault-injection run against a real cluster; verify "
             "served == offline engine, bit for bit (repro.chaos)")
    chaos_parser.add_argument("--cluster", type=int, default=3, metavar="K",
                              help="number of shard server subprocesses")
    chaos_parser.add_argument("--users", type=int, default=12_000)
    chaos_parser.add_argument("--protocol", default="hashtogram",
                              choices=["hashtogram", "explicit", "cms"])
    chaos_parser.add_argument("--domain-size", type=int, default=4096)
    chaos_parser.add_argument("--epsilon", type=float, default=1.0)
    chaos_parser.add_argument("--seed", type=int, default=7,
                              help="seed of the workload, the cluster "
                                   "partition, AND the fault schedule - one "
                                   "integer replays the whole run")
    chaos_parser.add_argument("--wire-format", default="binary",
                              choices=["json", "binary"])
    chaos_parser.add_argument("--schedule", default=None,
                              help="replay this saved fault-schedule JSON "
                                   "instead of generating one from --seed")
    chaos_parser.add_argument("--schedule-out", default=None,
                              help="write the fault schedule JSON here (the "
                                   "CI failure artifact)")
    chaos_parser.add_argument("--min-kinds", type=int, default=None,
                              help="fail unless at least this many distinct "
                                   "fault kinds actually fired (default: 5, "
                                   "or 4 with --membership)")
    chaos_parser.add_argument("--membership", action="store_true",
                              help="elastic-membership mode: script an "
                                   "add_shard and a drain mid-stream and "
                                   "fire the membership fault kinds "
                                   "(drain-race, torn-journal, "
                                   "corrupt-snapshot) at the transitions; "
                                   "the answers must still be bit-identical")
    chaos_parser.add_argument("--transport", default="tcp",
                              choices=["tcp", "shm"],
                              help="router->shard transport in --membership "
                                   "mode: TCP loopback or shared-memory "
                                   "rings; the invariant must hold on both")
    chaos_parser.add_argument("--base-dir", default=None,
                              help="cluster home on disk, kept after the "
                                   "run (default: a temp dir, removed) - "
                                   "CI uploads the journals and shard map "
                                   "from here when a run fails")
    chaos_parser.set_defaults(func=_cmd_chaos_test)

    status_parser = subparsers.add_parser(
        "cluster-status",
        help="probe a live server or cluster router with the health frame")
    status_parser.add_argument("--server", required=True,
                               help="HOST:PORT of the server or router")
    status_parser.add_argument("--timeout", type=float, default=10.0)
    status_parser.set_defaults(func=_cmd_cluster_status)

    ctl_parser = subparsers.add_parser(
        "cluster-ctl",
        help="drive a live router's elastic membership: add/drain shards, "
             "rolling restart, inspect the shard map")
    ctl_parser.add_argument("verb",
                            choices=["shard-map", "add-shard", "drain-shard",
                                     "rolling-restart"],
                            help="shard-map prints the epoch routing table; "
                                 "add-shard grows the cluster at the next "
                                 "epoch cut; drain-shard hands a shard's "
                                 "exact state to a survivor and retires it; "
                                 "rolling-restart checkpoints and restarts "
                                 "every shard in sequence with zero loss")
    ctl_parser.add_argument("--server", required=True,
                            help="HOST:PORT of the cluster router")
    ctl_parser.add_argument("--shard", type=int, default=None,
                            help="shard id to drain (drain-shard only)")
    ctl_parser.add_argument("--target", type=int, default=None,
                            help="survivor that absorbs the drained state "
                                 "(default: lowest active shard)")
    ctl_parser.add_argument("--timeout", type=float, default=60.0,
                            help="wire timeout; drains move whole shard "
                                 "states, so this is generous by default")
    ctl_parser.set_defaults(func=_cmd_cluster_ctl)

    matrix_parser = subparsers.add_parser(
        "matrix",
        help="YAML-driven experiment matrices: expand axes into cells, run "
             "them through the engine or live servers, render committed "
             "tables (see docs/experiments.md)")
    matrix_parser.add_argument(
        "verb", choices=["run", "list", "render"],
        help="run executes a config (cached cells are reused); list shows "
             "configs under experiments/configs/; render re-renders from "
             "the cache, executing only missing cells")
    matrix_parser.add_argument(
        "config", nargs="?", default=None,
        help="config path (required for run/render)")
    matrix_parser.add_argument(
        "configs", nargs="*",
        help="config paths for list (default: experiments/configs/*.yaml)")
    matrix_parser.add_argument(
        "--quick", action="store_true",
        help="serving configs: run the config's quick slice (outputs go to "
             "the cache, not docs/experiments/); paper configs: the "
             "deterministic committed EXPERIMENTS.md configuration")
    matrix_parser.add_argument(
        "--force", action="store_true",
        help="ignore and overwrite cached cell results")
    matrix_parser.add_argument(
        "--cache-dir", default=None,
        help="per-cell result cache (default: .matrix_cache/<config name>)")
    matrix_parser.add_argument(
        "--timings", action="store_true",
        help="also print the host-dependent timing columns")
    matrix_parser.add_argument(
        "-o", "--output", default=None,
        help="override the output path of a paper config")
    matrix_parser.set_defaults(func=_cmd_matrix)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--list-modules" in argv:
        argv.remove("--list-modules")
        check_path = None
        if "--check" in argv:
            index = argv.index("--check")
            try:
                check_path = argv[index + 1]
            except IndexError:
                print("--check requires a file path", file=sys.stderr)
                return 2
            del argv[index:index + 2]
        if argv:
            print(f"--list-modules takes no other arguments (got {argv})",
                  file=sys.stderr)
            return 2
        return _list_modules(check_path)
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
