"""Experiment E5: advanced grouposition — measured loss vs the kε and √k·ε curves.

For a sweep of group sizes k the driver measures the (1-δ)-quantile of the
cumulative privacy loss of k independent randomized-response reports (the
extremal ε-LDP protocol), and reports it next to

* the central-model group privacy bound kε (linear), and
* the Theorem 4.2 advanced-grouposition bound kε²/2 + ε sqrt(2k ln(1/δ)).

The expected shape: the measured quantile hugs the √k curve and separates from
the linear curve as k grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.accounting.composition import central_group_privacy
from repro.accounting.grouposition import GroupPrivacyAnalyzer, advanced_grouposition
from repro.randomizers.randomized_response import BinaryRandomizedResponse
from repro.utils.rng import RandomState


@dataclass
class GroupositionConfig:
    """Configuration for the group-privacy sweep."""

    epsilon: float = 0.2
    delta: float = 0.05
    group_sizes: List[int] = field(default_factory=lambda: [1, 4, 16, 64, 256, 1024])
    num_samples: int = 30_000
    rng: RandomState = 0


def run_grouposition(config: GroupositionConfig | None = None) -> List[Dict[str, object]]:
    """Measured group privacy loss quantiles vs the two analytic curves."""
    config = config or GroupositionConfig()
    analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(config.epsilon))
    estimates = analyzer.sweep_group_sizes(config.group_sizes, config.delta,
                                           num_samples=config.num_samples,
                                           rng=config.rng)
    rows = []
    for estimate in estimates:
        k = estimate.group_size
        local_bound = advanced_grouposition(k, config.epsilon, config.delta)
        central_bound, _ = central_group_privacy(k, config.epsilon)
        rows.append({
            "group_size": k,
            "measured_quantile": estimate.quantile,
            "measured_mean": estimate.mean,
            "advanced_grouposition_bound": local_bound,
            "central_bound_k_epsilon": central_bound,
            "advantage": central_bound / max(local_bound, 1e-12),
        })
    return rows
