"""Experiment E7: composition for randomized response (Theorem 5.1).

For a sweep of k (the number of composed randomized-response bits) the driver
computes, exactly:

* the worst-case privacy loss of the surrogate mechanism M̃,
* the Theorem 5.1 guarantee ε̃ = 6ε sqrt(k ln(1/β)),
* the naive (basic-composition) guarantee kε, and
* the total-variation distance between M̃(x) and the true composition M(x),
  next to the β it is supposed to stay under.

Expected shape: the worst-case loss tracks ~sqrt(k) and stays below ε̃, while
kε grows linearly and overtakes it; the TV distance stays below β.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.structure.composed_rr import ApproximateComposedRandomizedResponse
from repro.utils.rng import RandomState


@dataclass
class ComposedRRConfig:
    """Configuration for the Theorem 5.1 sweep."""

    epsilon: float = 0.05
    beta: float = 0.05
    num_bits_sweep: List[int] = field(default_factory=lambda: [4, 8, 16, 32, 64, 128])
    rng: RandomState = 0


def run_composed_rr(config: ComposedRRConfig | None = None) -> List[Dict[str, object]]:
    """Exact privacy/utility table for M̃ across the k sweep."""
    config = config or ComposedRRConfig()
    rows = []
    for k in config.num_bits_sweep:
        mechanism = ApproximateComposedRandomizedResponse(k, config.epsilon, config.beta)
        rows.append({
            "num_bits": k,
            "worst_case_loss": mechanism.worst_case_privacy_loss(),
            "theorem_bound": mechanism.composed_epsilon,
            "basic_composition": k * config.epsilon,
            "tv_distance": mechanism.tv_distance_to_composition(),
            "beta": config.beta,
            "escape_probability": mechanism.escape_probability(),
            "conditions_hold": mechanism.theorem_conditions_hold(),
        })
    return rows
