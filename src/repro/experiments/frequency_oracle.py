"""Experiment E4: frequency-oracle error against the Theorem 3.7/3.8 bounds.

For a sweep of domain sizes the driver measures the worst-case and RMS error
of the Hashtogram oracle (and the small-domain explicit oracle where the
domain permits) over a fixed query set, and reports the Theorem 3.7 / 3.8
formulas next to the measurements.  The expected shape: error is essentially
flat in |X| (only the log(min(n,|X|)/β) factor moves) and scales like
sqrt(n)/ε.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.bounds import (
    frequency_oracle_error,
    frequency_oracle_error_small_domain,
)
from repro.analysis.metrics import true_frequencies
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.frequency.hashtogram import HashtogramOracle
from repro.utils.rng import RandomState, as_generator
from repro.workloads.distributions import zipf_workload


@dataclass
class FrequencyOracleConfig:
    """Configuration for the oracle accuracy sweep."""

    num_users: int = 30_000
    epsilon: float = 1.0
    beta: float = 0.05
    domain_sizes: List[int] = field(
        default_factory=lambda: [1 << 8, 1 << 12, 1 << 16, 1 << 20])
    num_queries: int = 200
    explicit_domain_limit: int = 1 << 12
    rng: RandomState = 0


def _oracle_errors(oracle, values, queries) -> Dict[str, float]:
    truth = true_frequencies(values)
    estimates = np.asarray(oracle.estimate_many(queries), dtype=float)
    true_counts = np.array([truth.get(int(q), 0) for q in np.asarray(queries)],
                           dtype=float)
    errors = np.abs(estimates - true_counts)
    return {
        "max_error": float(errors.max()),
        "rms_error": float(np.sqrt((errors**2).mean())),
    }


def run_frequency_oracle(config: FrequencyOracleConfig | None = None
                         ) -> List[Dict[str, object]]:
    """Measure Hashtogram / explicit-oracle error across domain sizes."""
    config = config or FrequencyOracleConfig()
    gen = as_generator(config.rng)
    rows = []
    for domain_size in config.domain_sizes:
        values = zipf_workload(config.num_users, domain_size,
                               support=min(2_000, domain_size), rng=gen)
        heavy = [x for x, _ in sorted(true_frequencies(values).items(),
                                      key=lambda kv: -kv[1])[:20]]
        random_queries = gen.integers(0, domain_size,
                                      size=config.num_queries - len(heavy))
        queries = np.concatenate([np.asarray(heavy), random_queries])

        hashtogram = HashtogramOracle(domain_size, config.epsilon)
        hashtogram.collect(values, gen)
        row = {
            "domain_size": domain_size,
            "oracle": "hashtogram",
            "server_memory_items": hashtogram.server_state_size,
            "bound_thm37": frequency_oracle_error(config.num_users, domain_size,
                                                  config.epsilon, config.beta),
        }
        row.update(_oracle_errors(hashtogram, values, queries))
        rows.append(row)

        if domain_size <= config.explicit_domain_limit:
            explicit = ExplicitHistogramOracle(domain_size, config.epsilon)
            explicit.collect(values, gen)
            row = {
                "domain_size": domain_size,
                "oracle": "explicit",
                "server_memory_items": explicit.server_state_size,
                "bound_thm38": frequency_oracle_error_small_domain(
                    config.num_users, config.epsilon, config.beta),
            }
            row.update(_oracle_errors(explicit, values, queries))
            rows.append(row)
    return rows
