"""Render EXPERIMENTS.md from a ``kind: paper`` matrix config.

The ordered sections (experiment name, title, paper-vs-measured commentary)
live in ``experiments/configs/paper.yaml``; this module holds the two ways
to materialize each section's tables:

* **quick** — the exact tables ``python -m repro.cli run <experiment>
  --quick`` prints, with host-dependent timing columns stripped.  Seeded
  and deterministic: this is what the committed EXPERIMENTS.md records and
  what CI regenerates to fail on drift.
* **full** — the benchmark-harness configurations (the same drivers run
  under ``pytest benchmarks/ --benchmark-only``), registered in
  :data:`FULL_RUNNERS` below.  These take minutes and include
  host-dependent columns, so their output is for local reading, not for
  committing.

``benchmarks/generate_experiments_md.py`` is a thin shim over this module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.matrix.config import ConfigError, MatrixConfig

#: full (benchmark-harness) table builders, keyed by ``repro.cli run`` name
FULL_RUNNERS: Dict[str, Callable[[], List[Tuple[str, list]]]] = {}


def _full(name: str):
    def decorator(func):
        FULL_RUNNERS[name] = func
        return func
    return decorator


@_full("table1")
def _table1():
    from repro.experiments import Table1Config, run_table1, theoretical_rows
    config = Table1Config(num_users=60_000, domain_size=1 << 20, epsilon=4.0,
                          beta=0.05, heavy_fractions=[0.3, 0.22, 0.15],
                          scan_domain_size=1 << 14, rng=0)
    return [("Measured", run_table1(config)),
            ("Asymptotic formulas at these parameters", theoretical_rows(config))]


@_full("error-vs-beta")
def _error_vs_beta():
    from repro.experiments import ErrorCurveConfig, run_error_vs_beta
    config = ErrorCurveConfig(num_users=40_000, domain_size=1 << 20, epsilon=4.0,
                              betas=[0.2, 0.05, 0.01, 1e-3, 1e-5], rng=0)
    return [("Detection threshold vs β", run_error_vs_beta(config))]


@_full("error-vs-n")
def _error_vs_n():
    from repro.experiments import ErrorCurveConfig, run_error_vs_n
    config = ErrorCurveConfig(domain_size=1 << 20, epsilon=4.0, beta=0.05,
                              num_users_sweep=[10_000, 20_000, 40_000, 80_000],
                              rng=1)
    return [("Error vs n", run_error_vs_n(config))]


@_full("error-vs-epsilon")
def _error_vs_epsilon():
    from repro.experiments import ErrorCurveConfig, run_error_vs_epsilon
    config = ErrorCurveConfig(num_users=40_000, domain_size=1 << 20, beta=0.05,
                              epsilon_sweep=[2.0, 4.0, 8.0], rng=2)
    return [("Error vs ε", run_error_vs_epsilon(config))]


@_full("frequency-oracle")
def _frequency_oracle():
    from repro.experiments import FrequencyOracleConfig, run_frequency_oracle
    config = FrequencyOracleConfig(num_users=30_000, epsilon=1.0, beta=0.05,
                                   domain_sizes=[1 << 8, 1 << 12, 1 << 16, 1 << 20],
                                   num_queries=200, rng=0)
    return [("Oracle error vs domain size", run_frequency_oracle(config))]


@_full("grouposition")
def _grouposition():
    from repro.experiments import GroupositionConfig, run_grouposition
    config = GroupositionConfig(epsilon=0.2, delta=0.05,
                                group_sizes=[1, 4, 16, 64, 256, 1024],
                                num_samples=30_000, rng=0)
    return [("Group privacy loss vs k", run_grouposition(config))]


@_full("max-information")
def _max_information():
    from repro.experiments import MaxInformationConfig, run_max_information
    config = MaxInformationConfig(epsilon=0.1, beta=0.05,
                                  num_users_sweep=[100, 1_000, 10_000],
                                  empirical_users=200, empirical_samples=4_000,
                                  rng=0)
    return [("Max-information bounds", run_max_information(config))]


@_full("composed-rr")
def _composed_rr():
    from repro.experiments import ComposedRRConfig, run_composed_rr
    config = ComposedRRConfig(epsilon=0.05, beta=0.05,
                              num_bits_sweep=[4, 8, 16, 32, 64, 128, 256])
    return [("M̃ vs the composition of RR", run_composed_rr(config))]


@_full("genprot")
def _genprot():
    from repro.experiments import GenProtConfig, run_genprot
    config = GenProtConfig(epsilon=0.25, delta=1e-9, beta=0.05, num_users=3_000,
                           privacy_trials=3_000, rng=0)
    return [("GenProt privacy and utility", run_genprot(config))]


@_full("lower-bound")
def _lower_bound():
    from repro.experiments import (
        LowerBoundConfig,
        run_anti_concentration,
        run_counting_lower_bound,
    )
    config = LowerBoundConfig(num_users=8_000, epsilon=1.0,
                              betas=[0.3, 0.1, 0.03, 0.01], num_trials=300,
                              anticoncentration_bits=400, rng=0)
    return [("Counting error vs the Theorem 7.2 curve", run_counting_lower_bound(config)),
            ("Corollary 7.6 escape probabilities", run_anti_concentration(config))]


@_full("list-recovery")
def _list_recovery():
    from repro.experiments import ListRecoveryConfig, run_list_recovery
    config = ListRecoveryConfig(domain_size=1 << 16, num_coordinates=12,
                                hash_range=128, list_size=16, alpha=0.25,
                                num_codewords=6, noise_entries_per_list=4,
                                corrupted_fractions=[0.0, 0.1, 0.2, 0.3, 0.5],
                                num_trials=5, rng=0)
    return [("Recovery vs corrupted fraction", run_list_recovery(config))]


@_full("ablation-hashing")
def _ablation_hashing():
    from repro.experiments import HashingAblationConfig, run_hashing_ablation
    config = HashingAblationConfig(num_users=40_000, domain_size=1 << 20,
                                   epsilon=4.0, betas=[0.2, 0.02, 0.002],
                                   heavy_fractions=[0.3, 0.2], rng=0)
    return [("Hashing-structure ablation", run_hashing_ablation(config))]


@_full("ablation-hashtogram")
def _ablation_hashtogram():
    from repro.experiments import HashtogramAblationConfig, run_hashtogram_ablation
    config = HashtogramAblationConfig(num_users=30_000, domain_size=1 << 18,
                                      epsilon=1.0, bucket_counts=[32, 128, 512],
                                      repetition_counts=[1, 3, 7],
                                      num_queries=100, rng=0)
    return [("Hashtogram ablation", run_hashtogram_ablation(config))]


HEADER = """# EXPERIMENTS — paper vs. measured

This file is rendered by the matrix runner from its section config:
``python -m repro.cli matrix render experiments/configs/paper.yaml``
(``benchmarks/generate_experiments_md.py`` is a shim over the same
renderer).  The paper is a theory paper: its quantitative content is
Table 1 plus the theorem statements, so "paper value" below means the
asymptotic formula evaluated at the experiment's parameters (unit
constants unless stated), and the check is on *shape* — who wins, how
quantities scale in n, β, ε, k — not on absolute constants (see the scope
note in README.md).

All measurements below come from the in-process simulator (users are
simulated locally and the server aggregation is real); timings are
host-dependent.
"""

QUICK_HEADER = """# EXPERIMENTS — paper vs. measured (quick configuration)

This file is rendered by the matrix runner from its section config —
``python -m repro.cli matrix render experiments/configs/paper.yaml --quick``
— and checked for drift in CI; every table below is exactly what
``python -m repro.cli run <experiment> --quick`` prints (deterministic
seeds; host-dependent timing columns are omitted).  For the larger
benchmark-harness configuration, render without ``--quick`` — the same
drivers also run under ``pytest benchmarks/ --benchmark-only``.  Schema
and determinism policy: docs/experiments.md.

The paper is a theory paper: its quantitative content is Table 1 plus the
theorem statements, so "paper value" below means the asymptotic formula
evaluated at the experiment's parameters (unit constants unless stated),
and the check is on *shape* — who wins, how quantities scale in n, β, ε, k
— not on absolute constants (see the scope note in README.md).

All measurements come from the in-process simulator (users are simulated
locally and the server aggregation is real).
"""


def strip_host_dependent(rows):
    """Drop measured timing columns (keep formula strings like ``O~(n)``)."""
    drop = set()
    for row in rows:
        for key, value in row.items():
            if "time" in key and not isinstance(value, str):
                drop.add(key)
    if not drop:
        return rows
    return [{k: v for k, v in row.items() if k not in drop} for row in rows]


def known_experiments() -> List[str]:
    """Section names a paper config may reference (the CLI registry)."""
    from repro.cli import EXPERIMENTS
    return list(EXPERIMENTS)


def render_paper_md(config: MatrixConfig, quick: bool = False,
                    progress: Optional[Callable[[str], None]] = None) -> str:
    """Render the EXPERIMENTS.md text for a paper config."""
    from repro.cli import EXPERIMENTS
    from repro.experiments import format_markdown_table

    parts = [QUICK_HEADER if quick else HEADER]
    for section in config.sections:
        name = section.experiment
        if name not in EXPERIMENTS:
            raise ConfigError(
                f"paper config {config.name!r}: unknown experiment {name!r}")
        if not quick and name not in FULL_RUNNERS:
            raise ConfigError(
                f"paper config {config.name!r}: experiment {name!r} has no "
                f"registered full configuration")
        if progress is not None:
            progress(f"running: {section.title} ...")
        parts.append(f"\n## {section.title}\n")
        parts.append(section.commentary + "\n")
        if quick:
            parts.append(f"\nReproduce: ``python -m repro.cli run {name} "
                         "--quick``\n")
            _, runner = EXPERIMENTS[name]
            tables = runner(True)
        else:
            tables = FULL_RUNNERS[name]()
        for subtitle, rows in tables:
            if quick:
                rows = strip_host_dependent(rows)
            parts.append(f"\n**{subtitle}**\n")
            parts.append(format_markdown_table(rows) + "\n")
    return "\n".join(parts)
