"""Scenario matrix harness: YAML-driven experiment sweeps (``repro.cli matrix``).

The benchmarks and EXPERIMENTS.md used to be a dozen ad-hoc scripts; this
package makes "add a scenario" a five-line YAML diff instead.  A config file
under ``experiments/configs/`` declares either

* a **serving matrix** (``kind: serving``): axes — protocol x epsilon x
  domain size x distribution x workers x shards x wire format x transport —
  expanded into cells.  Every cell runs the offline engine reference; cells
  with ``shards >= 1`` additionally spawn a live single server or a
  K-shard cluster, stream the canonical chunk stream at it, and assert the
  served estimates equal the offline engine **bit for bit**; or
* a **paper config** (``kind: paper``): the ordered sections of
  EXPERIMENTS.md, each naming one registered experiment driver plus its
  paper-vs-measured commentary.

Committed outputs (``docs/experiments/`` tables, EXPERIMENTS.md) are
deterministic — seeded cells, host-dependent timing columns stripped — and
CI regenerates them to fail on drift.  Schema, defaults, and the
determinism policy: ``docs/experiments.md``.
"""

from repro.experiments.matrix.config import (
    AXES,
    Cell,
    ConfigError,
    MatrixConfig,
    derive_cell_seed,
    expand_cells,
    load_config,
)
from repro.experiments.matrix.runner import CellResult, run_cell, run_matrix
from repro.experiments.matrix.render import render_accuracy_csv, render_serving_md

__all__ = [
    "AXES",
    "Cell",
    "CellResult",
    "ConfigError",
    "MatrixConfig",
    "derive_cell_seed",
    "expand_cells",
    "load_config",
    "render_accuracy_csv",
    "render_serving_md",
    "run_cell",
    "run_matrix",
]
