"""``python -m repro.cli matrix run|list|render`` — the matrix CLI verbs.

Kept out of ``repro.cli`` so the (heavy, YAML-needing) matrix machinery is
imported only when a matrix verb actually runs.

Output routing: a ``kind: serving`` run renders a results table
(``<name>.md``) and accuracy-curve CSV (``<name>_accuracy.csv``).  When the
config is ``committed`` and the full cell set ran, they go to
``docs/experiments/`` (the drift-checked locations); a ``--quick`` slice or
a ``committed: false`` config writes them under the cache directory
instead, so a partial run can never overwrite a committed artifact.  The
host-dependent ``<name>_timing.csv`` always stays in the cache directory.
A ``kind: paper`` config renders to its ``output`` path (EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.matrix.config import (
    ConfigError,
    MatrixConfig,
    expand_cells,
    load_config,
)

#: where `matrix list` looks when no config paths are given
DEFAULT_CONFIG_DIR = Path("experiments/configs")

#: committed destination for serving tables (drift-checked by CI)
COMMITTED_DIR = Path("docs/experiments")


def _discover(paths: List[str]) -> List[Path]:
    if paths:
        return [Path(p) for p in paths]
    if not DEFAULT_CONFIG_DIR.is_dir():
        return []
    return sorted(DEFAULT_CONFIG_DIR.glob("*.yaml"))


def _cache_dir(config: MatrixConfig, override: Optional[str]) -> Path:
    if override is not None:
        return Path(override)
    return Path(".matrix_cache") / config.name


def _write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"wrote {path}")


def _run_serving(config: MatrixConfig, args) -> int:
    from repro.experiments.matrix.render import (
        render_accuracy_csv,
        render_serving_md,
        render_timing_csv,
    )
    from repro.experiments.matrix.runner import run_matrix

    cache_dir = _cache_dir(config, args.cache_dir)
    results = run_matrix(config, quick=args.quick, cache_dir=cache_dir,
                         force=args.force, progress=print)
    if config.committed and not args.quick:
        out_dir = COMMITTED_DIR
    else:
        out_dir = cache_dir / "out"
    _write(out_dir / f"{config.name}.md", render_serving_md(config, results))
    _write(out_dir / f"{config.name}_accuracy.csv",
           render_accuracy_csv(results))
    _write(cache_dir / f"{config.name}_timing.csv",
           render_timing_csv(results))
    if args.timings:
        from repro.experiments.reporting import format_table
        rows = [{"cell": r.cell.index, **r.cell.axes(), **r.timing}
                for r in results]
        print(format_table(rows, title="\nhost-dependent timings "
                                        "(never committed):"))
    failures = [r for r in results if not r.bit_identical]
    for failure in failures:
        print(f"matrix: cell {failure.cell.index} ({failure.cell.label()}) "
              f"FAILED {failure.deterministic['check']}", file=sys.stderr)
    if failures:
        return 1
    print(f"matrix: all {len(results)} cells BIT-IDENTICAL "
          f"({sum(1 for r in results if r.cached)} from cache)")
    return 0


def _run_paper(config: MatrixConfig, args) -> int:
    from repro.experiments.matrix.paper import render_paper_md

    text = render_paper_md(config, quick=args.quick, progress=print)
    output = Path(args.output) if args.output else Path(config.output)
    _write(output, text)
    return 0


def cmd_matrix(args) -> int:
    """Entry point behind ``repro.cli``'s ``matrix`` subcommand."""
    try:
        if args.verb == "list":
            # argparse routes the first positional into `config`.
            named = [args.config] if args.config else []
            configs = _discover(named + list(args.configs))
            if not configs:
                print(f"matrix list: no configs found under "
                      f"{DEFAULT_CONFIG_DIR}/", file=sys.stderr)
                return 2
            for path in configs:
                config = load_config(path)
                if config.kind == "serving":
                    shape = (f"{len(expand_cells(config))} cells "
                             f"({len(expand_cells(config, quick=True))} quick)")
                else:
                    shape = f"{len(config.sections)} sections -> {config.output}"
                print(f"{path}: [{config.kind}] {config.name} — {shape}")
                print(f"    {config.description}")
            return 0
        if args.config is None:
            print(f"matrix {args.verb}: a config path is required",
                  file=sys.stderr)
            return 2
        if args.configs:
            print(f"matrix {args.verb}: exactly one config path is expected "
                  f"(got extra {args.configs})", file=sys.stderr)
            return 2
        config = load_config(Path(args.config))
        if config.kind == "paper":
            return _run_paper(config, args)
        if args.verb == "render":
            # render = run without --force: only uncached cells execute.
            args.force = False
        return _run_serving(config, args)
    except ConfigError as exc:
        print(f"matrix: {exc}", file=sys.stderr)
        return 2
