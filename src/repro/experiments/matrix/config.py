"""Matrix config schema: YAML parsing, validation, expansion into cells.

A config is one YAML mapping (``docs/experiments.md`` is the schema
document).  The serving kind declares a ``matrix:`` of axes; this module
expands it into the cartesian product of cells, derives one deterministic
seed per cell (a stable hash of the config seed and the cell's resolved
axis values — independent of declaration order and of which other cells
exist), applies the optional ``quick:`` slice, and guards the product size
with ``max_cells`` so a stray axis cannot silently explode CI.

Everything here is pure: no cell is executed, no file besides the config
is read.  The runner (:mod:`repro.experiments.matrix.runner`) consumes the
``Cell`` objects produced here.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union


class ConfigError(ValueError):
    """A matrix config failed validation; the message names the offending key."""


#: registered protocols (mirrors ``repro.engine.bench.BENCH_PROTOCOLS`` —
#: kept literal so config validation does not import the engine stack)
_PROTOCOLS = ("hashtogram", "explicit", "cms")
_DISTRIBUTIONS = ("zipf", "uniform", "planted")
_WIRE_FORMATS = ("json", "binary")
_TRANSPORTS = ("tcp", "shm")

#: hard ceiling on ``max_cells`` itself (a config cannot lift the lid off)
MAX_CELLS_CEILING = 4096
#: default cartesian-product guard when the config does not set one
DEFAULT_MAX_CELLS = 512
#: schema version folded into every cell digest: bump to invalidate caches
SCHEMA_VERSION = 1


def _check_choice(axis: str, value, choices: Sequence[str]) -> str:
    if not isinstance(value, str) or value not in choices:
        raise ConfigError(f"matrix.{axis}: {value!r} is not one of "
                          f"{', '.join(choices)}")
    return value


def _check_int(axis: str, value, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"matrix.{axis}: {value!r} is not an integer")
    if value < minimum:
        raise ConfigError(f"matrix.{axis}: {value} is below the minimum "
                          f"of {minimum}")
    return int(value)


def _check_float(axis: str, value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"matrix.{axis}: {value!r} is not a number")
    if not value > 0:
        raise ConfigError(f"matrix.{axis}: {value} must be positive")
    return float(value)


#: axis name -> (validator, default values); declaration order here is the
#: canonical cell-expansion order (the rightmost axis varies fastest), so
#: reordering axes in a YAML file never reorders the committed tables.
AXES: Dict[str, Tuple[object, Tuple]] = {
    "protocol": (lambda v: _check_choice("protocol", v, _PROTOCOLS),
                 ("hashtogram",)),
    "epsilon": (lambda v: _check_float("epsilon", v), (1.0,)),
    "domain_size": (lambda v: _check_int("domain_size", v, 2), (4096,)),
    "users": (lambda v: _check_int("users", v, 1), (4000,)),
    "distribution": (lambda v: _check_choice("distribution", v,
                                             _DISTRIBUTIONS), ("zipf",)),
    "workers": (lambda v: _check_int("workers", v, 1), (1,)),
    "shards": (lambda v: _check_int("shards", v, 0), (0,)),
    "wire_format": (lambda v: _check_choice("wire_format", v, _WIRE_FORMATS),
                    ("binary",)),
    "transport": (lambda v: _check_choice("transport", v, _TRANSPORTS),
                  ("tcp",)),
}


@dataclass(frozen=True)
class Cell:
    """One fully resolved point of the matrix.

    ``shards == 0`` is the engine-only execution path (the offline
    reference is additionally checked against a serial 1-worker run);
    ``shards == 1`` spawns a live single server; ``shards >= 2`` a live
    K-shard cluster — either way the served estimates must equal the
    offline engine bit for bit.
    """

    protocol: str
    epsilon: float
    domain_size: int
    users: int
    distribution: str
    workers: int
    shards: int
    wire_format: str
    transport: str
    #: deterministic per-cell seed (derive_cell_seed)
    seed: int
    #: position in the expansion order (stable across runs)
    index: int

    def axes(self) -> Dict[str, object]:
        """The resolved axis values (no seed/index) in canonical order."""
        return {name: getattr(self, name) for name in AXES}

    def digest(self) -> str:
        """Stable cache key: axes + seed + schema version."""
        payload = {"axes": self.axes(), "seed": self.seed,
                   "schema": SCHEMA_VERSION}
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]

    def label(self) -> str:
        mode = ("engine" if self.shards == 0
                else "server" if self.shards == 1
                else f"cluster:{self.shards}")
        return (f"{self.protocol} eps={self.epsilon:g} n={self.users} "
                f"|X|={self.domain_size} {self.distribution} "
                f"w={self.workers} {mode} {self.wire_format}/{self.transport}")


@dataclass(frozen=True)
class PaperSection:
    """One EXPERIMENTS.md section: a registered driver plus its commentary."""

    experiment: str
    title: str
    commentary: str


@dataclass(frozen=True)
class MatrixConfig:
    """A parsed, validated config file (serving or paper kind)."""

    name: str
    kind: str
    description: str
    seed: int
    source: Optional[Path]
    #: serving kind: axis name -> tuple of validated values
    matrix: Mapping[str, Tuple] = field(default_factory=dict)
    #: serving kind: axis name -> tuple of quick-slice values
    quick: Mapping[str, Tuple] = field(default_factory=dict)
    max_cells: int = DEFAULT_MAX_CELLS
    #: number of sampled probe queries per cell (top-5 truth always queried)
    queries: int = 32
    #: serving kind: committed outputs land under docs/experiments/;
    #: uncommitted configs render into the cache directory instead
    committed: bool = True
    #: paper kind: the ordered EXPERIMENTS.md sections
    sections: Tuple[PaperSection, ...] = ()
    #: paper kind: output document (relative paths resolve against the repo
    #: root, i.e. the config file's grandparent directory)
    output: str = "EXPERIMENTS.md"


def derive_cell_seed(config_seed: int, axes: Mapping[str, object]) -> int:
    """One deterministic seed per cell.

    A stable SHA-256 of the config seed and the cell's resolved axis
    values, canonicalized with sorted keys — so the seed depends on *what*
    the cell is, never on axis declaration order, expansion position, or
    which other cells the matrix contains.  Adding a value to one axis
    therefore leaves every existing cell's workload bit-identical.
    """
    canon = json.dumps({"seed": int(config_seed), "axes": dict(axes)},
                       sort_keys=True)
    digest = hashlib.sha256(canon.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def _load_yaml(path: Path) -> Mapping[str, object]:
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - container ships pyyaml
        raise ConfigError(
            f"{path}: reading matrix configs requires PyYAML "
            f"(`pip install pyyaml`); JSON configs load without it"
        ) from exc
    payload = yaml.safe_load(path.read_text())
    if not isinstance(payload, Mapping):
        raise ConfigError(f"{path}: top level must be a mapping, "
                          f"got {type(payload).__name__}")
    return payload


def _axis_values(axis: str, raw, validator) -> Tuple:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ConfigError(f"matrix.{axis}: must be a non-empty list "
                          f"(got {raw!r})")
    values = tuple(validator(value) for value in raw)
    if len(set(values)) != len(values):
        raise ConfigError(f"matrix.{axis}: duplicate values in {list(raw)}")
    return values


def _parse_serving(payload: Mapping[str, object], name: str, seed: int,
                   description: str, source: Optional[Path]) -> MatrixConfig:
    raw_matrix = payload.get("matrix", {})
    if not isinstance(raw_matrix, Mapping):
        raise ConfigError("matrix: must be a mapping of axis -> values")
    unknown = sorted(set(raw_matrix) - set(AXES))
    if unknown:
        raise ConfigError(f"matrix: unknown axes {unknown}; valid axes are "
                          f"{', '.join(AXES)}")
    matrix: Dict[str, Tuple] = {}
    for axis, (validator, default) in AXES.items():
        if axis in raw_matrix:
            matrix[axis] = _axis_values(axis, raw_matrix[axis], validator)
        else:
            matrix[axis] = default

    raw_quick = payload.get("quick", {})
    if not isinstance(raw_quick, Mapping):
        raise ConfigError("quick: must be a mapping of axis -> values")
    unknown = sorted(set(raw_quick) - set(AXES))
    if unknown:
        raise ConfigError(f"quick: unknown axes {unknown}")
    quick: Dict[str, Tuple] = {}
    for axis, raw in raw_quick.items():
        validator, _ = AXES[axis]
        values = _axis_values(axis, raw, validator)
        missing = [v for v in values if v not in matrix[axis]]
        if missing:
            raise ConfigError(f"quick.{axis}: {missing} are not values of "
                              f"matrix.{axis} (a quick slice only narrows)")
        quick[axis] = values

    max_cells = payload.get("max_cells", DEFAULT_MAX_CELLS)
    max_cells = _check_int("max_cells", max_cells, 1)
    if max_cells > MAX_CELLS_CEILING:
        raise ConfigError(f"max_cells: {max_cells} exceeds the hard ceiling "
                          f"of {MAX_CELLS_CEILING}")
    queries = _check_int("queries", payload.get("queries", 32), 1)
    committed = payload.get("committed", True)
    if not isinstance(committed, bool):
        raise ConfigError(f"committed: expected a boolean, got {committed!r}")

    config = MatrixConfig(name=name, kind="serving", description=description,
                          seed=seed, source=source, matrix=matrix,
                          quick=quick, max_cells=max_cells, queries=queries,
                          committed=committed)
    # Expansion enforces the product guard; do it once at load so a
    # misconfigured file fails at parse time, not mid-run.
    expand_cells(config)
    return config


def _parse_paper(payload: Mapping[str, object], name: str, seed: int,
                 description: str, source: Optional[Path]) -> MatrixConfig:
    raw_sections = payload.get("sections")
    if not isinstance(raw_sections, list) or not raw_sections:
        raise ConfigError("sections: a paper config needs a non-empty list")
    sections: List[PaperSection] = []
    for i, raw in enumerate(raw_sections):
        if not isinstance(raw, Mapping):
            raise ConfigError(f"sections[{i}]: must be a mapping")
        for key in ("experiment", "title", "commentary"):
            if not isinstance(raw.get(key), str) or not raw[key].strip():
                raise ConfigError(f"sections[{i}].{key}: required string")
        extra = sorted(set(raw) - {"experiment", "title", "commentary"})
        if extra:
            raise ConfigError(f"sections[{i}]: unknown keys {extra}")
        sections.append(PaperSection(experiment=raw["experiment"],
                                     title=raw["title"],
                                     commentary=raw["commentary"].strip()))
    names = [s.experiment for s in sections]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise ConfigError(f"sections: duplicate experiments {dupes}")
    output = payload.get("output", "EXPERIMENTS.md")
    if not isinstance(output, str) or not output:
        raise ConfigError(f"output: expected a path string, got {output!r}")
    return MatrixConfig(name=name, kind="paper", description=description,
                        seed=seed, source=source, sections=tuple(sections),
                        output=output)


def load_config(path: Union[str, Path]) -> MatrixConfig:
    """Parse and validate one config file (YAML, or JSON — a YAML subset)."""
    path = Path(path)
    if not path.is_file():
        raise ConfigError(f"{path}: no such config file")
    payload = _load_yaml(path)

    known = {"name", "kind", "description", "seed", "matrix", "quick",
             "max_cells", "queries", "committed", "sections", "output"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(f"{path}: unknown top-level keys {unknown}")

    name = payload.get("name", path.stem)
    if not isinstance(name, str) or not name:
        raise ConfigError(f"{path}: name must be a non-empty string")
    kind = payload.get("kind", "serving")
    if kind not in ("serving", "paper"):
        raise ConfigError(f"{path}: kind must be 'serving' or 'paper', "
                          f"got {kind!r}")
    description = payload.get("description", "")
    if not isinstance(description, str):
        raise ConfigError(f"{path}: description must be a string")
    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise ConfigError(f"{path}: seed must be a non-negative integer")

    try:
        if kind == "serving":
            return _parse_serving(payload, name, seed, description.strip(),
                                  path)
        return _parse_paper(payload, name, seed, description.strip(), path)
    except ConfigError as exc:
        raise ConfigError(f"{path}: {exc}") from None


def expand_cells(config: MatrixConfig, quick: bool = False) -> List[Cell]:
    """Expand the matrix into its ordered list of cells.

    The product iterates axes in canonical ``AXES`` order (rightmost axis
    varies fastest); with ``quick=True`` each axis is first narrowed to its
    ``quick:`` slice (axes without a slice keep all values).  The
    cartesian product is guarded by ``max_cells``.
    """
    if config.kind != "serving":
        raise ConfigError(f"{config.name}: only serving configs expand into "
                          f"cells (kind={config.kind!r})")
    axes_values: List[Tuple] = []
    for axis in AXES:
        values = config.matrix[axis]
        if quick and axis in config.quick:
            values = config.quick[axis]
        axes_values.append(values)
    total = 1
    for values in axes_values:
        total *= len(values)
    if total > config.max_cells:
        raise ConfigError(
            f"{config.name}: the matrix expands to {total} cells, above "
            f"max_cells={config.max_cells}; narrow an axis or raise the "
            f"guard explicitly")
    cells: List[Cell] = []
    for index, combo in enumerate(itertools.product(*axes_values)):
        axes = dict(zip(AXES, combo, strict=True))
        cells.append(Cell(**axes,
                          seed=derive_cell_seed(config.seed, axes),
                          index=index))
    return cells
