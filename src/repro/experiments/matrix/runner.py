"""Execute matrix cells: offline engine reference, live serving, bit-identity.

Every cell computes the offline :func:`repro.engine.run_simulation`
reference from its derived seed.  Engine cells (``shards == 0``) verify the
multi-worker run against a serial 1-worker run; serving cells spawn a real
``serve`` / ``serve-cluster`` subprocess tree (the same
:func:`repro.cluster.supervisor.spawn_server_process` path the CLI and the
chaos harness use), stream the canonical chunk stream at it over the cell's
wire format, and verify the served estimates equal the offline reference
**bit for bit**.  Either way the cell's committed fields are a pure
function of the cell seed; wall-clock throughput is kept in a separate
``timing`` payload that never reaches committed output.

Results are cached per cell digest (JSON files under the cache directory),
so an interrupted ``matrix run`` resumes where it stopped and a re-render
needs no re-execution.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.matrix.config import (
    SCHEMA_VERSION,
    Cell,
    MatrixConfig,
    expand_cells,
)

#: committed (deterministic) result fields, in rendering order
DETERMINISTIC_FIELDS = ("check", "bit_identical", "top5_max_err",
                        "probe_mean_err", "report_bits", "state_scalars")


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-restored) cell."""

    cell: Cell
    #: committed fields — a pure function of the cell seed
    deterministic: Dict[str, object]
    #: host-dependent fields — never rendered into committed output
    timing: Dict[str, object]
    #: True when the result came from the cache, not a fresh execution
    cached: bool

    @property
    def bit_identical(self) -> bool:
        return bool(self.deterministic["bit_identical"])


def _workload(cell: Cell, gen) -> np.ndarray:
    from repro.workloads.distributions import (
        planted_workload,
        uniform_workload,
        zipf_workload,
    )

    if cell.distribution == "zipf":
        return zipf_workload(cell.users, cell.domain_size,
                             support=min(2_000, cell.domain_size), rng=gen)
    if cell.distribution == "uniform":
        return uniform_workload(cell.users, cell.domain_size, rng=gen)
    # planted: three fixed-fraction heavy hitters over a uniform background
    return planted_workload(cell.users, cell.domain_size,
                            heavy_fractions=[0.3, 0.2, 0.1], rng=gen).values


def _spawn(params, cell: Cell):
    """Start the cell's live serving tree; returns ``(proc, host, port)``."""
    from repro.cluster.supervisor import spawn_server_process

    extra: Tuple[str, ...] = ()
    if cell.shards >= 2:
        verb = "serve-cluster"
        extra = ("--shards", str(cell.shards), "--transport", cell.transport)
    else:
        verb = "serve"
        if cell.transport != "tcp":
            extra = ("--transport", cell.transport)
    with tempfile.NamedTemporaryFile("w", suffix="-params.json",
                                     delete=False) as handle:
        json.dump(params.to_dict(), handle)
        params_file = handle.name
    try:
        return spawn_server_process(verb, params_file, extra)
    finally:
        # The LISTENING line is printed only after the child loaded the
        # parameters, so the file is removable on every path.
        os.unlink(params_file)


def _drive_live(params, cell: Cell, batches, routes,
                queries: List[int]) -> Tuple[np.ndarray, int, float]:
    """Stream the chunk stream at a live server; return served estimates."""
    import subprocess

    from repro.server import AggregationClient

    proc, host, port = _spawn(params, cell)
    stopped = False
    try:
        with AggregationClient(host, port,
                               wire_format=cell.wire_format) as client:
            published = client.hello()
            if published != params:
                raise RuntimeError(
                    f"cell {cell.label()}: the spawned server published "
                    f"different parameters than this cell's")
            start = time.perf_counter()
            for batch, route in zip(batches, routes, strict=True):
                client.send_batch(batch, epoch=0, route=route)
            absorbed = client.sync()
            ingest_s = time.perf_counter() - start
            served = client.query(queries)
            client.shutdown()
            stopped = True
        return np.asarray(served), int(absorbed), ingest_s
    finally:
        try:
            if not stopped:
                proc.terminate()
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover - wedged child
            proc.kill()
            proc.wait(timeout=15)
        proc.stdout.close()


def run_cell(cell: Cell, num_queries: int = 32) -> Dict[str, Any]:
    """Execute one cell; returns the JSON-safe cached payload."""
    from repro.analysis.metrics import true_frequencies
    from repro.engine import encode_stream, make_plan, run_simulation
    from repro.engine.bench import build_bench_params
    from repro.utils.rng import as_generator

    gen = as_generator(cell.seed)
    values = _workload(cell, gen)
    params = build_bench_params(cell.protocol, cell.domain_size, cell.epsilon,
                                cell.users, rng=gen)
    plan_seed = int(gen.integers(0, 2**63 - 1))

    offline = run_simulation(params, values,
                             rng=np.random.default_rng(plan_seed),
                             workers=cell.workers)
    oracle = offline.finalize()

    truth = true_frequencies(values)
    # Deterministic top-5: break count ties on the item id.
    top5 = sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    probes = np.random.default_rng(cell.seed).integers(
        0, cell.domain_size, size=num_queries)
    queries = [int(x) for x, _ in top5] + [int(x) for x in probes]
    expected = np.asarray(oracle.estimate_many(queries))

    timing: Dict[str, object] = {
        "offline_reports_per_s": int(offline.reports_per_s),
    }
    if cell.shards == 0:
        check = "engine==serial"
        if cell.workers == 1:
            identical = True
        else:
            serial = run_simulation(params, values,
                                    rng=np.random.default_rng(plan_seed),
                                    workers=1).finalize()
            identical = bool(np.array_equal(
                expected, np.asarray(serial.estimate_many(queries))))
    else:
        check = "served==offline"
        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(plan_seed)))
        routes = [chunk.route_key for chunk in
                  make_plan(params, cell.users,
                            rng=np.random.default_rng(plan_seed))]
        served, absorbed, ingest_s = _drive_live(params, cell, batches,
                                                 routes, queries)
        identical = (absorbed == cell.users
                     and bool(np.array_equal(served, expected)))
        timing["serve_ingest_s"] = round(ingest_s, 4)
        timing["serve_reports_per_s"] = int(cell.users / max(ingest_s, 1e-9))

    top5_errors = [abs(float(e) - count)
                   for (_, count), e in zip(top5, expected[:len(top5)],
                                            strict=True)]
    probe_errors = [abs(float(e) - truth.get(int(q), 0))
                    for q, e in zip(probes, expected[len(top5):], strict=True)]
    deterministic: Dict[str, object] = {
        "check": check,
        "bit_identical": identical,
        "top5_max_err": round(max(top5_errors), 3) if top5_errors else 0.0,
        "probe_mean_err": round(float(np.mean(probe_errors)), 3)
        if probe_errors else 0.0,
        "report_bits": round(float(params.report_bits), 1),
        "state_scalars": int(oracle.server_state_size),
    }
    return {
        "schema": SCHEMA_VERSION,
        "digest": cell.digest(),
        "axes": cell.axes(),
        "seed": cell.seed,
        "index": cell.index,
        "deterministic": deterministic,
        "timing": timing,
    }


def _cache_path(cache_dir: Path, cell: Cell) -> Path:
    return cache_dir / f"cell-{cell.digest()}.json"


def _load_cached(cache_dir: Path, cell: Cell) -> Optional[Dict[str, Any]]:
    path = _cache_path(cache_dir, cell)
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if (payload.get("schema") != SCHEMA_VERSION
            or payload.get("digest") != cell.digest()):
        return None
    return payload


def run_matrix(config: MatrixConfig, quick: bool = False,
               cache_dir: Optional[Path] = None, force: bool = False,
               progress: Optional[Callable[[str], None]] = None,
               ) -> List[CellResult]:
    """Execute (or cache-restore) every cell of a serving config, in order.

    ``cache_dir`` defaults to ``.matrix_cache/<config name>`` under the
    current directory.  ``force`` ignores and overwrites cached results;
    otherwise a cell whose digest is cached is restored without executing,
    which is what makes an interrupted run resumable.
    """
    cells = expand_cells(config, quick=quick)
    cache_dir = Path(cache_dir) if cache_dir is not None \
        else Path(".matrix_cache") / config.name
    cache_dir.mkdir(parents=True, exist_ok=True)
    results: List[CellResult] = []
    for cell in cells:
        payload = None if force else _load_cached(cache_dir, cell)
        cached = payload is not None
        if payload is None:
            if progress is not None:
                progress(f"[{cell.index + 1}/{len(cells)}] {cell.label()}")
            payload = run_cell(cell, num_queries=config.queries)
            _cache_path(cache_dir, cell).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n")
        elif progress is not None:
            progress(f"[{cell.index + 1}/{len(cells)}] {cell.label()} "
                     f"(cached)")
        results.append(CellResult(cell=cell,
                                  deterministic=dict(payload["deterministic"]),
                                  timing=dict(payload["timing"]),
                                  cached=cached))
    return results
