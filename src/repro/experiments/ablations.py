"""Ablation experiments A1 and A2 (design choices called out in DESIGN.md).

A1 — hashing structure: PrivateExpanderSketch uses *independent per-coordinate
hashes* combined by a list-recoverable code, versus the single shared hash of
the Bassily et al. [3] reduction (which then needs repetitions).  The ablation
runs both on the same planted workload at a fixed β and reports recall and the
realised repetition count — isolating the structural change responsible for
the improved β-dependence.

A2 — Hashtogram internals: the bucket-count / repetition trade-off of the
final-stage frequency oracle.  More buckets reduce collision noise but raise
memory; more repetitions reduce variance per query but add public randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.metrics import score_heavy_hitters, true_frequencies
from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.frequency.hashtogram import HashtogramOracle
from repro.utils.rng import RandomState, as_generator
from repro.workloads.distributions import planted_workload, zipf_workload


@dataclass
class HashingAblationConfig:
    """Configuration for ablation A1."""

    num_users: int = 40_000
    domain_size: int = 1 << 20
    epsilon: float = 4.0
    betas: List[float] = field(default_factory=lambda: [0.2, 0.02, 0.002])
    heavy_fractions: List[float] = field(default_factory=lambda: [0.3, 0.2])
    rng: RandomState = 0


def run_hashing_ablation(config: HashingAblationConfig | None = None
                         ) -> List[Dict[str, object]]:
    """A1: per-coordinate hashes + code versus a single hash + repetitions."""
    config = config or HashingAblationConfig()
    gen = as_generator(config.rng)
    workload = planted_workload(config.num_users, config.domain_size,
                                config.heavy_fractions, rng=gen)
    threshold = min(workload.heavy_frequencies)
    rows = []
    for beta in config.betas:
        ours = PrivateExpanderSketch(config.domain_size, config.epsilon, beta)
        baseline = SingleHashHeavyHitters(config.domain_size, config.epsilon, beta)
        ours_result = ours.run(workload.values, rng=gen)
        baseline_result = baseline.run(workload.values, rng=gen)
        ours_score = score_heavy_hitters(ours_result.estimates, workload.values,
                                         threshold)
        baseline_score = score_heavy_hitters(baseline_result.estimates,
                                             workload.values, threshold)
        rows.append({
            "beta": beta,
            "ours_recall": ours_score.recall,
            "ours_max_error": ours_score.max_estimation_error,
            "baseline_recall": baseline_score.recall,
            "baseline_max_error": baseline_score.max_estimation_error,
            "baseline_repetitions": baseline_result.metadata["repetitions"],
        })
    return rows


@dataclass
class HashtogramAblationConfig:
    """Configuration for ablation A2."""

    num_users: int = 30_000
    domain_size: int = 1 << 18
    epsilon: float = 1.0
    bucket_counts: List[int] = field(default_factory=lambda: [32, 128, 512])
    repetition_counts: List[int] = field(default_factory=lambda: [1, 3, 7])
    num_queries: int = 100
    rng: RandomState = 0


def run_hashtogram_ablation(config: HashtogramAblationConfig | None = None
                            ) -> List[Dict[str, object]]:
    """A2: Hashtogram error/memory across bucket and repetition settings."""
    config = config or HashtogramAblationConfig()
    gen = as_generator(config.rng)
    values = zipf_workload(config.num_users, config.domain_size,
                           support=2_000, rng=gen)
    truth = true_frequencies(values)
    heavy = [x for x, _ in sorted(truth.items(), key=lambda kv: -kv[1])[:20]]
    queries = np.concatenate([
        np.asarray(heavy),
        gen.integers(0, config.domain_size, size=config.num_queries - len(heavy)),
    ])
    rows = []
    for buckets in config.bucket_counts:
        for repetitions in config.repetition_counts:
            oracle = HashtogramOracle(config.domain_size, config.epsilon,
                                      num_repetitions=repetitions,
                                      num_buckets=buckets)
            oracle.collect(values, gen)
            estimates = oracle.estimate_many(queries)
            errors = np.array([abs(est - truth.get(int(q), 0))
                               for q, est in zip(queries, estimates, strict=True)])
            rows.append({
                "num_buckets": buckets,
                "num_repetitions": repetitions,
                "max_error": float(errors.max()),
                "rms_error": float(np.sqrt((errors**2).mean())),
                "server_memory_items": oracle.server_state_size,
                "public_randomness_bits": oracle.public_randomness_bits,
            })
    return rows
