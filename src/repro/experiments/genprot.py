"""Experiment E8: the GenProt approximate-to-pure transformation (Theorem 6.1).

Two (ε, δ)-LDP base randomizers are pushed through GenProt:

* the Gaussian histogram randomizer — genuinely approximate (unbounded loss),
* binary randomized response — pure, used as a sanity control,

and for each the driver reports:

* the transformed privacy guarantee 10ε and a Monte-Carlo estimate of the
  privacy loss of the *sent index*,
* the per-user report size (ceil(log2 T) bits — the O(log log n) claim),
* the Theorem 6.1 TV-distance bound, and
* end-to-end utility: the error of a histogram / count estimated from the
  surrogate reports versus the same estimate from the original reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.randomizers.laplace import GaussianHistogramRandomizer
from repro.randomizers.randomized_response import BinaryRandomizedResponse
from repro.structure.genprot import GenProt
from repro.utils.rng import RandomState, as_generator


@dataclass
class GenProtConfig:
    """Configuration for the GenProt evaluation."""

    epsilon: float = 0.25
    delta: float = 1e-9
    beta: float = 0.05
    num_users: int = 3_000
    histogram_domain: int = 4
    privacy_trials: int = 3_000
    rng: RandomState = 0


def _count_error_rr(epsilon: float, num_users: int, reports) -> float:
    base = BinaryRandomizedResponse(epsilon)
    estimate = base.unbiased_count(np.asarray(reports, dtype=np.int64))
    return abs(estimate - num_users // 2)


def run_genprot(config: GenProtConfig | None = None) -> List[Dict[str, object]]:
    """Privacy and utility of GenProt for the two base randomizers."""
    config = config or GenProtConfig()
    gen = as_generator(config.rng)
    rows: List[Dict[str, object]] = []

    # --- binary randomized response base (pure, sanity control) ------------------
    rr = BinaryRandomizedResponse(config.epsilon)
    genprot_rr = GenProt(rr, beta=config.beta)
    values = [1] * (config.num_users // 2) + [0] * (config.num_users -
                                                    config.num_users // 2)
    original_reports = rr.randomize_many(np.asarray(values), gen)
    surrogate_reports = genprot_rr.surrogate_reports(values, gen)
    rows.append({
        "base": "randomized_response",
        "base_epsilon": config.epsilon,
        "base_delta": 0.0,
        "transformed_epsilon": genprot_rr.transformed_epsilon,
        "empirical_index_loss": genprot_rr.empirical_index_privacy(
            0, 1, num_trials=config.privacy_trials, rng=gen),
        "report_bits": genprot_rr.report_bits(config.num_users),
        "tv_bound": genprot_rr.utility_bound(config.num_users),
        "original_count_error": _count_error_rr(config.epsilon, config.num_users,
                                                original_reports),
        "transformed_count_error": _count_error_rr(config.epsilon, config.num_users,
                                                   surrogate_reports),
    })

    # --- Gaussian base (genuinely approximate) -------------------------------------
    gaussian = GaussianHistogramRandomizer(config.epsilon, config.delta,
                                           config.histogram_domain)
    genprot_gaussian = GenProt(gaussian, beta=config.beta)
    histogram_values = gen.integers(0, config.histogram_domain,
                                    size=config.num_users)
    true_histogram = np.bincount(histogram_values,
                                 minlength=config.histogram_domain)
    original = np.stack([gaussian.randomize(int(v), gen) for v in histogram_values])
    surrogate = np.stack(genprot_gaussian.surrogate_reports(
        [int(v) for v in histogram_values], gen))
    original_error = float(np.abs(gaussian.unbiased_histogram(original)
                                  - true_histogram).max())
    transformed_error = float(np.abs(gaussian.unbiased_histogram(surrogate)
                                     - true_histogram).max())
    rows.append({
        "base": "gaussian_histogram",
        "base_epsilon": config.epsilon,
        "base_delta": config.delta,
        "transformed_epsilon": genprot_gaussian.transformed_epsilon,
        "empirical_index_loss": genprot_gaussian.empirical_index_privacy(
            0, 1, num_trials=config.privacy_trials, rng=gen),
        "report_bits": genprot_gaussian.report_bits(config.num_users),
        "tv_bound": genprot_gaussian.utility_bound(config.num_users),
        "original_histogram_error": original_error,
        "transformed_histogram_error": transformed_error,
    })
    return rows
