"""Experiments E1-E3: heavy-hitters error as a function of β, n and ε.

E1 (error vs β) is the paper's headline improvement: the detection threshold
of the single-hash baseline grows with the number of repetitions ≈ log(1/β),
while PrivateExpanderSketch's construction does not change with β at all (only
its analysis does).  The driver measures, for each β:

* the empirical detection threshold — the smallest planted frequency that is
  still recovered — via bisection over planted frequencies, and
* the worst frequency-estimation error over recovered planted elements,

and reports them next to the Theorem 3.3 / Theorem 3.13 formulas.

E2 and E3 sweep n and ε at fixed β and compare the measured estimation error
of the protocol's final oracle against the ``(1/ε) sqrt(n log(|X|/β))`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


from repro.analysis.bounds import (
    heavy_hitter_error_bassily_et_al,
    heavy_hitter_error_this_work,
)
from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.utils.rng import RandomState, as_generator
from repro.workloads.distributions import planted_workload


@dataclass
class ErrorCurveConfig:
    """Shared configuration for the E1-E3 sweeps."""

    num_users: int = 40_000
    domain_size: int = 1 << 20
    epsilon: float = 4.0
    beta: float = 0.05
    betas: List[float] = field(default_factory=lambda: [0.2, 0.05, 0.01, 1e-3, 1e-5])
    num_users_sweep: List[int] = field(default_factory=lambda: [10_000, 20_000, 40_000, 80_000])
    epsilon_sweep: List[float] = field(default_factory=lambda: [1.0, 2.0, 4.0, 8.0])
    probe_fractions: List[float] = field(
        default_factory=lambda: [0.04, 0.07, 0.11, 0.16, 0.22, 0.3])
    rng: RandomState = 0


def _detection_threshold(protocol, num_users: int, domain_size: int,
                         probe_fractions: Sequence[float], gen) -> float:
    """Smallest planted fraction (among the probes) that the protocol recovers.

    A single workload plants one element per probe fraction; the threshold is
    the smallest fraction whose element appears in the output with an estimate
    within half its true frequency.  Returns ``inf`` if none is recovered.
    """
    fractions = sorted(probe_fractions)
    workload = planted_workload(num_users, domain_size, fractions, rng=gen)
    result = protocol.run(workload.values, rng=gen)
    recovered = float("inf")
    for element, frequency in sorted(workload.as_dict().items(), key=lambda kv: kv[1]):
        estimate = result.estimates.get(element)
        if estimate is not None and abs(estimate - frequency) <= frequency / 2:
            recovered = min(recovered, frequency / num_users)
    return recovered


def run_error_vs_beta(config: ErrorCurveConfig | None = None) -> List[Dict[str, object]]:
    """E1: empirical detection threshold vs β for ours and the baseline."""
    config = config or ErrorCurveConfig()
    gen = as_generator(config.rng)
    rows = []
    for beta in config.betas:
        ours = PrivateExpanderSketch(config.domain_size, config.epsilon, beta)
        baseline = SingleHashHeavyHitters(config.domain_size, config.epsilon, beta)
        ours_threshold = _detection_threshold(ours, config.num_users,
                                              config.domain_size,
                                              config.probe_fractions, gen)
        baseline_threshold = _detection_threshold(baseline, config.num_users,
                                                  config.domain_size,
                                                  config.probe_fractions, gen)
        rows.append({
            "beta": beta,
            "baseline_repetitions": baseline.repetitions_for_beta(),
            "ours_detection_fraction": ours_threshold,
            "baseline_detection_fraction": baseline_threshold,
            "ours_formula": heavy_hitter_error_this_work(
                config.num_users, config.domain_size, config.epsilon, beta),
            "baseline_formula": heavy_hitter_error_bassily_et_al(
                config.num_users, config.domain_size, config.epsilon, beta),
        })
    return rows


def run_error_vs_n(config: ErrorCurveConfig | None = None) -> List[Dict[str, object]]:
    """E2: estimation error of the protocol vs n, against the sqrt(n) envelope."""
    config = config or ErrorCurveConfig()
    gen = as_generator(config.rng)
    rows = []
    for num_users in config.num_users_sweep:
        workload = planted_workload(num_users, config.domain_size,
                                    [0.3, 0.22], rng=gen)
        protocol = PrivateExpanderSketch(config.domain_size, config.epsilon,
                                         config.beta)
        result = protocol.run(workload.values, rng=gen)
        errors = [abs(result.estimate_of(x) - f)
                  for x, f in workload.as_dict().items()
                  if x in result.estimates]
        rows.append({
            "num_users": num_users,
            "recovered": len(errors),
            "max_error": max(errors) if errors else float("nan"),
            "formula": heavy_hitter_error_this_work(
                num_users, config.domain_size, config.epsilon, config.beta),
        })
    return rows


def run_error_vs_epsilon(config: ErrorCurveConfig | None = None) -> List[Dict[str, object]]:
    """E3: estimation error of the protocol vs ε, against the 1/ε envelope."""
    config = config or ErrorCurveConfig()
    gen = as_generator(config.rng)
    workload = planted_workload(config.num_users, config.domain_size,
                                [0.35, 0.25], rng=gen)
    rows = []
    for epsilon in config.epsilon_sweep:
        protocol = PrivateExpanderSketch(config.domain_size, epsilon, config.beta)
        result = protocol.run(workload.values, rng=gen)
        errors = [abs(result.estimate_of(x) - f)
                  for x, f in workload.as_dict().items()
                  if x in result.estimates]
        rows.append({
            "epsilon": epsilon,
            "recovered": len(errors),
            "max_error": max(errors) if errors else float("nan"),
            "formula": heavy_hitter_error_this_work(
                config.num_users, config.domain_size, epsilon, config.beta),
        })
    return rows
