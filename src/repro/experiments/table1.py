"""Experiment T1: regenerate Table 1 (resource and error comparison).

For each protocol — PrivateExpanderSketch (this work), the single-hash
reduction of Bassily et al. [3], and the domain-scan Bassily-Smith-style
baseline — the driver runs the protocol on a planted-heavy-hitter workload and
reports the same columns as Table 1:

* server time, per-user time (measured wall clock),
* server memory (scalars retained),
* communication and public randomness per user (bits),
* the empirical worst-case error over the planted elements and a sample of
  absent elements, next to the paper's asymptotic error formula.

Absolute timings obviously depend on the host and on the fact that users are
simulated in-process; the comparison of interest is the *relative* profile
(who is linear in |X|, who needs repetitions, who keeps O(1) communication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.bounds import table1_rows
from repro.analysis.metrics import score_heavy_hitters
from repro.baselines.bassily_smith import DomainScanHeavyHitters
from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.utils.rng import RandomState, as_generator
from repro.workloads.distributions import planted_workload


@dataclass
class Table1Config:
    """Configuration of the Table 1 regeneration."""

    num_users: int = 60_000
    domain_size: int = 1 << 20
    epsilon: float = 4.0
    beta: float = 0.05
    heavy_fractions: List[float] = field(default_factory=lambda: [0.3, 0.22, 0.15])
    #: the domain-scan baseline refuses very large domains; it is run on this
    #: reduced domain instead (and the row says so).
    scan_domain_size: int = 1 << 14
    include_domain_scan: bool = True
    rng: RandomState = 0


def _measure(protocol, workload, rng, domain_size) -> Dict[str, object]:
    result = protocol.run(workload.values, rng=rng)
    score = score_heavy_hitters(result.estimates, workload.values,
                                threshold=min(workload.heavy_frequencies))
    absent = [int(x) for x in range(7, 7 + 50)
              if x not in set(workload.heavy_elements)]
    absent_error = 0.0
    if result.oracle is not None:
        absent_error = float(np.abs(result.oracle.estimate_many(absent)).max())
    meter = result.meter
    num_users = workload.num_users
    return {
        "protocol": protocol.name,
        "domain_size": domain_size,
        "server_time_s": meter.server_time_s,
        "user_time_ms": 1e3 * meter.per_user_time_s(num_users),
        "server_memory_items": meter.server_memory_items,
        "comm_bits_per_user": meter.per_user_communication_bits(num_users),
        "public_rand_bits": float(meter.public_randomness_bits),
        "recall": score.recall,
        "max_error_heavy": score.max_estimation_error,
        "max_error_absent": absent_error,
        "list_size": result.list_size,
    }


def run_table1(config: Table1Config | None = None) -> List[Dict[str, object]]:
    """Run all protocols and return one row per protocol (plus formula rows)."""
    config = config or Table1Config()
    gen = as_generator(config.rng)

    workload = planted_workload(config.num_users, config.domain_size,
                                config.heavy_fractions, rng=gen)
    rows: List[Dict[str, object]] = []

    ours = PrivateExpanderSketch(config.domain_size, config.epsilon, config.beta)
    rows.append(_measure(ours, workload, gen, config.domain_size))

    bnst = SingleHashHeavyHitters(config.domain_size, config.epsilon, config.beta)
    rows.append(_measure(bnst, workload, gen, config.domain_size))

    if config.include_domain_scan:
        scan_workload = planted_workload(config.num_users, config.scan_domain_size,
                                         config.heavy_fractions, rng=gen)
        scanner = DomainScanHeavyHitters(config.scan_domain_size, config.epsilon,
                                         config.beta)
        rows.append(_measure(scanner, scan_workload, gen, config.scan_domain_size))

    return rows


def theoretical_rows(config: Table1Config | None = None) -> List[Dict[str, object]]:
    """The asymptotic Table 1 rows evaluated at the experiment's parameters."""
    config = config or Table1Config()
    out = []
    for row in table1_rows():
        out.append({
            "protocol": row.name,
            "server_time": row.server_time,
            "user_time": row.user_time,
            "server_memory": row.server_memory,
            "communication": row.communication,
            "public_randomness": row.public_randomness,
            "error_formula": row.error_formula,
            "error_value": row.error(config.num_users, config.domain_size,
                                     config.epsilon, config.beta),
        })
    return out
