"""Experiment E6: max-information of LDP protocols (Theorem 4.5).

Two views:

* the analytic comparison — the Theorem 4.5 bound for ε-LDP protocols vs the
  central-model εn bound and the product-only central bound, over sweeps of n
  and β; and
* an empirical estimate — the (1-β)-quantile of the realised privacy loss of a
  randomized-response protocol between the sampled input and a fresh redraw
  from the same (non-product!) distribution, which Theorem 4.5's proof shows
  upper-bounds the β-approximate max-information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.accounting.max_information import (
    central_max_information,
    central_max_information_product,
    ldp_max_information,
    max_information_from_losses,
)
from repro.randomizers.randomized_response import BinaryRandomizedResponse
from repro.utils.rng import RandomState, as_generator


@dataclass
class MaxInformationConfig:
    """Configuration for the max-information comparison."""

    epsilon: float = 0.1
    beta: float = 0.05
    num_users_sweep: List[int] = field(default_factory=lambda: [100, 1_000, 10_000])
    empirical_users: int = 200
    empirical_samples: int = 4_000
    correlation: float = 0.8
    rng: RandomState = 0


def analytic_rows(config: MaxInformationConfig | None = None) -> List[Dict[str, object]]:
    """Theorem 4.5 vs the central-model bounds over a sweep of n."""
    config = config or MaxInformationConfig()
    rows = []
    for n in config.num_users_sweep:
        rows.append({
            "num_users": n,
            "ldp_bound_nats": ldp_max_information(n, config.epsilon, config.beta),
            "central_bound_nats": central_max_information(n, config.epsilon),
            "central_product_bound_nats": central_max_information_product(
                n, config.epsilon, config.beta),
        })
    return rows


def _sample_correlated_database(num_users: int, correlation: float,
                                gen: np.random.Generator) -> np.ndarray:
    """A deliberately non-product input distribution: all users copy a shared
    bit with probability ``correlation`` (else they flip a fair coin)."""
    shared = int(gen.integers(0, 2))
    copies = gen.random(num_users) < correlation
    noise = gen.integers(0, 2, size=num_users)
    return np.where(copies, shared, noise).astype(np.int64)


def empirical_rows(config: MaxInformationConfig | None = None) -> List[Dict[str, object]]:
    """Empirical max-information estimate for a non-product input distribution.

    The privacy loss between the realised input x and an independent redraw x'
    is sampled ``empirical_samples`` times; its (1-β)-quantile is an estimate
    of the β-approximate max-information, to be compared with Theorem 4.5.
    """
    config = config or MaxInformationConfig()
    gen = as_generator(config.rng)
    randomizer = BinaryRandomizedResponse(config.epsilon)
    n = config.empirical_users

    losses = np.empty(config.empirical_samples)
    for i in range(config.empirical_samples):
        x = _sample_correlated_database(n, config.correlation, gen)
        x_prime = _sample_correlated_database(n, config.correlation, gen)
        differing = np.nonzero(x != x_prime)[0]
        total = 0.0
        for index in differing:
            report = randomizer.randomize(int(x[index]), gen)
            total += randomizer.privacy_loss(int(x[index]), int(x_prime[index]), report)
        losses[i] = total

    empirical = max_information_from_losses(losses, config.beta)
    return [{
        "num_users": n,
        "correlation": config.correlation,
        "empirical_max_information_nats": empirical,
        "ldp_bound_nats": ldp_max_information(n, config.epsilon, config.beta),
        "central_bound_nats": central_max_information(n, config.epsilon),
    }]


def run_max_information(config: MaxInformationConfig | None = None
                        ) -> List[Dict[str, object]]:
    """Full E6 experiment: analytic sweep plus the empirical non-product row."""
    config = config or MaxInformationConfig()
    return analytic_rows(config) + empirical_rows(config)
