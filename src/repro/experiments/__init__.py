"""Experiment drivers: one module per table/figure reproduced from the paper.

Each module exposes a small configuration dataclass and a ``run_*`` function
returning plain dictionaries/lists of rows, so that

* the ``benchmarks/`` harness can time and print them under pytest-benchmark,
* ``EXPERIMENTS.md`` can be regenerated from the same code, and
* users can call them programmatically from notebooks or scripts.

Experiment index (see DESIGN.md for the full mapping):

===========  ================================================================
``table1``   T1 — the resource/error comparison of Table 1
``error_curves``  E1-E3 — error vs β, n, ε for the heavy-hitters protocols
``frequency_oracle``  E4 — Hashtogram error vs its Theorem 3.7/3.8 bounds
``grouposition``      E5 — measured group privacy loss vs kε and √k·ε curves
``max_information``   E6 — max-information bounds, LDP vs central
``composed_rr``       E7 — Theorem 5.1: privacy and TV distance of M̃
``genprot``           E8 — Theorem 6.1: privacy/utility of the transformation
``lower_bound``       E9 — Theorem 7.2: measured error vs the lower bound
``list_recovery``     E10 — list-recovery success vs corrupted coordinates
``ablations``         A1/A2 — hashing-structure and Hashtogram ablations
===========  ================================================================
"""

from repro.experiments.ablations import (
    HashingAblationConfig,
    HashtogramAblationConfig,
    run_hashing_ablation,
    run_hashtogram_ablation,
)
from repro.experiments.composed_rr import ComposedRRConfig, run_composed_rr
from repro.experiments.error_curves import (
    ErrorCurveConfig,
    run_error_vs_beta,
    run_error_vs_epsilon,
    run_error_vs_n,
)
from repro.experiments.frequency_oracle import (
    FrequencyOracleConfig,
    run_frequency_oracle,
)
from repro.experiments.genprot import GenProtConfig, run_genprot
from repro.experiments.grouposition import GroupositionConfig, run_grouposition
from repro.experiments.list_recovery import ListRecoveryConfig, run_list_recovery
from repro.experiments.lower_bound import (
    LowerBoundConfig,
    run_anti_concentration,
    run_counting_lower_bound,
    run_lower_bound,
)
from repro.experiments.max_information import MaxInformationConfig, run_max_information
from repro.experiments.reporting import format_markdown_table, format_table
from repro.experiments.table1 import Table1Config, run_table1, theoretical_rows

__all__ = [
    "format_table",
    "format_markdown_table",
    "Table1Config",
    "run_table1",
    "theoretical_rows",
    "ErrorCurveConfig",
    "run_error_vs_beta",
    "run_error_vs_n",
    "run_error_vs_epsilon",
    "FrequencyOracleConfig",
    "run_frequency_oracle",
    "GroupositionConfig",
    "run_grouposition",
    "MaxInformationConfig",
    "run_max_information",
    "ComposedRRConfig",
    "run_composed_rr",
    "GenProtConfig",
    "run_genprot",
    "LowerBoundConfig",
    "run_counting_lower_bound",
    "run_anti_concentration",
    "run_lower_bound",
    "ListRecoveryConfig",
    "run_list_recovery",
    "HashingAblationConfig",
    "HashtogramAblationConfig",
    "run_hashing_ablation",
    "run_hashtogram_ablation",
]
