"""Plain-text and Markdown table rendering for experiment results.

All experiment drivers return lists of dictionaries (one per row); these
helpers render them consistently for benchmark stdout and for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def _format_value(value) -> str:
    """Human-friendly scalar formatting (3 significant decimals for floats)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def _columns(rows: Sequence[Mapping[str, object]],
             columns: Sequence[str] | None) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _columns(rows, columns)
    rendered: List[List[str]] = [[_format_value(row.get(c, "")) for c in cols]
                                 for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(cols))))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Mapping[str, object]],
                          columns: Sequence[str] | None = None) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    cols = _columns(rows, columns)
    lines = ["| " + " | ".join(cols) + " |",
             "|" + "|".join("---" for _ in cols) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_format_value(row.get(c, "")) for c in cols) + " |")
    return "\n".join(lines)


def merge_row(base: Dict[str, object], extra: Mapping[str, object]) -> Dict[str, object]:
    """Return a copy of ``base`` updated with ``extra`` (for building rows)."""
    merged = dict(base)
    merged.update(extra)
    return merged
