"""Experiment E9: the Theorem 7.2 lower bound and its anti-concentration engine.

Two parts:

* the counting experiment — the replicated-database construction from the
  proof of Theorem 7.2 run against the optimal ε-LDP counting protocol, with
  the measured (1-β)-quantile error compared to the
  ``Ω((1/ε) sqrt(n log(1/β)))`` curve and the matching upper bound; and
* the anti-concentration curve — exact escape probabilities of a
  Poisson-binomial sum from intervals of the Corollary 7.6 width, verifying
  that the β it promises is actually attained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.lowerbounds.anti_concentration import (
    corollary_interval_halfwidth,
    interval_escape_probability,
    poisson_binomial_moments,
)
from repro.lowerbounds.counting import CountingLowerBoundExperiment
from repro.utils.rng import RandomState


@dataclass
class LowerBoundConfig:
    """Configuration for the lower-bound experiments."""

    num_users: int = 8_000
    epsilon: float = 1.0
    betas: List[float] = field(default_factory=lambda: [0.3, 0.1, 0.03, 0.01])
    num_trials: int = 300
    anticoncentration_bits: int = 400
    rng: RandomState = 0


def run_counting_lower_bound(config: LowerBoundConfig | None = None
                             ) -> List[Dict[str, object]]:
    """Measured error quantiles of the counting protocol vs the Theorem 7.2 curve."""
    config = config or LowerBoundConfig()
    experiment = CountingLowerBoundExperiment(config.num_users, config.epsilon)
    summary = experiment.run_trials(config.num_trials, rng=config.rng)
    rows = []
    for beta in config.betas:
        rows.append({
            "beta": beta,
            "measured_quantile_error": summary.quantile(beta),
            "lower_bound": experiment.lower_bound_curve([beta])[0],
            "upper_bound": experiment.upper_bound_error(beta),
            "num_source_bits": experiment.num_source_bits,
        })
    return rows


def run_anti_concentration(config: LowerBoundConfig | None = None
                           ) -> List[Dict[str, object]]:
    """Exact escape probabilities from Corollary 7.6-width intervals."""
    config = config or LowerBoundConfig()
    probabilities = [0.5] * config.anticoncentration_bits
    mean, variance = poisson_binomial_moments(probabilities)
    rows = []
    for beta in config.betas:
        halfwidth = corollary_interval_halfwidth(variance, beta, constant=0.5)
        escape = interval_escape_probability(probabilities, mean - halfwidth,
                                             mean + halfwidth)
        rows.append({
            "beta": beta,
            "interval_halfwidth": halfwidth,
            "exact_escape_probability": escape,
            "escape_at_least_beta": escape >= beta,
        })
    return rows


def run_lower_bound(config: LowerBoundConfig | None = None) -> Dict[str, List[Dict]]:
    """Both parts of E9, keyed by sub-experiment."""
    config = config or LowerBoundConfig()
    return {
        "counting": run_counting_lower_bound(config),
        "anti_concentration": run_anti_concentration(config),
    }
