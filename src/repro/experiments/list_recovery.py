"""Experiment E10: the unique-list-recoverable code under corruption.

The code of Theorem 3.6 must recover every codeword that agrees with a
(1-α)-fraction of the lists.  The driver plants a set of codewords, corrupts a
controlled fraction of each codeword's coordinates (dropping the entry or
replacing its symbol), pads the lists with random noise entries, and measures
the recovery rate as the corrupted fraction sweeps through and past α.

Expected shape: recovery stays at 1.0 while the corruption is below the code's
tolerance and collapses once it exceeds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.codes.list_recoverable import UniqueListRecoverableCode
from repro.utils.rng import RandomState, as_generator


@dataclass
class ListRecoveryConfig:
    """Configuration for the corruption sweep."""

    domain_size: int = 1 << 16
    num_coordinates: int = 12
    hash_range: int = 64
    list_size: int = 16
    alpha: float = 0.25
    num_codewords: int = 6
    noise_entries_per_list: int = 4
    corrupted_fractions: List[float] = field(
        default_factory=lambda: [0.0, 0.1, 0.2, 0.3, 0.5])
    num_trials: int = 5
    rng: RandomState = 0


def _corrupted_lists(code: UniqueListRecoverableCode, elements, fraction: float,
                     noise_entries: int, gen: np.random.Generator):
    """Lists containing the elements' encodings with a corrupted coordinate fraction."""
    num_coordinates = code.num_coordinates
    lists = [[] for _ in range(num_coordinates)]
    num_corrupted = int(round(fraction * num_coordinates))
    for x in elements:
        corrupted = set(gen.choice(num_coordinates, size=num_corrupted,
                                   replace=False).tolist())
        for m, symbol in enumerate(code.encode(int(x))):
            if m in corrupted:
                continue
            if all(y != symbol.y for y, _ in lists[m]):
                lists[m].append((symbol.y, symbol.z))
    for m in range(num_coordinates):
        used = {y for y, _ in lists[m]}
        added = 0
        while added < noise_entries:
            y = int(gen.integers(0, code.params.hash_range))
            if y in used:
                added += 1
                continue
            used.add(y)
            lists[m].append((y, int(gen.integers(0, code.z_alphabet_size))))
            added += 1
    return lists


def run_list_recovery(config: ListRecoveryConfig | None = None) -> List[Dict[str, object]]:
    """Recovery rate of planted codewords vs the corrupted-coordinate fraction."""
    config = config or ListRecoveryConfig()
    gen = as_generator(config.rng)
    code = UniqueListRecoverableCode.create(
        domain_size=config.domain_size,
        num_coordinates=config.num_coordinates,
        hash_range=config.hash_range,
        list_size=config.list_size,
        alpha=config.alpha,
        rng=gen,
    )
    rows = []
    for fraction in config.corrupted_fractions:
        recovered = 0
        planted = 0
        spurious = 0
        for _ in range(config.num_trials):
            elements = gen.choice(config.domain_size, size=config.num_codewords,
                                  replace=False)
            lists = _corrupted_lists(code, elements, fraction,
                                     config.noise_entries_per_list, gen)
            decoded = set(code.decode(lists))
            planted += len(elements)
            recovered += sum(1 for x in elements if int(x) in decoded)
            spurious += len(decoded - {int(x) for x in elements})
        rows.append({
            "corrupted_fraction": fraction,
            "alpha": config.alpha,
            "recovery_rate": recovered / planted,
            "spurious_per_trial": spurious / config.num_trials,
        })
    return rows
