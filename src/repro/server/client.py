"""Clients for the streaming aggregation service.

Two flavors over identical wire bytes:

* :class:`AggregationClient` — blocking sockets; the right tool for scripts,
  tests, and the thread-per-connection load generator
  (``python -m repro.cli load-test``).
* :class:`AsyncAggregationClient` — asyncio streams, for embedding in an
  event loop next to other I/O.

Both expose the full frame vocabulary: ``hello`` (fetch the published
:class:`~repro.protocol.wire.PublicParams`), ``send_batch`` (fire-and-forget
ingestion), ``sync`` (barrier: frames on one connection are processed in
order and the reply waits for the ingestion queue to drain, so everything
*this* connection sent beforehand is absorbed; other connections' unread
frames may still be in flight — each sender must issue its own ``sync``),
``query`` (live windowed estimates), ``snapshot``, ``stats``, ``health``
(liveness probe; against a cluster router it carries per-shard status),
and ``shutdown``.  Server-side failures surface as :class:`ServerError` —
the connection stays usable — and a cluster router that exhausted its
recovery deadline against a dead shard surfaces as the typed
:class:`ShardUnavailable` subclass.

Both flavors apply a default I/O deadline (:data:`DEFAULT_TIMEOUT`) to
connect and to every request/reply exchange, so a stalled peer raises
:class:`TimeoutError` instead of hanging the caller forever; pass
``timeout=None`` to opt back into unbounded blocking.

Report batches ship in the client's ``wire_format``: ``"json"`` (default;
the b64-columnar JSON frame) or ``"binary"`` (the zero-copy columnar frame
of ``docs/wire-protocol.md`` §8 — no JSON, no base64, and typically several
times smaller and faster to ingest).  ``hello`` doubles as format
negotiation: the reply advertises the server's accepted formats and the
client raises if its own format is not among them.
"""

from __future__ import annotations

import asyncio
import base64
import socket
from typing import Dict, Optional, Sequence

import numpy as np

from repro.protocol.binary import unpack_state
from repro.protocol.wire import PublicParams, ReportBatch
from repro.server.framing import (
    WIRE_FORMATS,
    FrameError,
    encode_reports_frame,
    read_frame,
    read_frame_sync,
    write_frame,
    write_frame_sync,
)

__all__ = ["AggregationClient", "AsyncAggregationClient", "DEFAULT_TIMEOUT",
           "ServerError", "ShardUnavailable"]

#: default connect/request deadline, seconds; ``timeout=None`` disables
DEFAULT_TIMEOUT = 60.0


class ServerError(RuntimeError):
    """The server answered a request with an ``error`` frame."""


class ShardUnavailable(ServerError):
    """A cluster router exhausted its bounded recovery deadline against a
    dead or stalled shard (error frames carrying ``"code":
    "shard_unavailable"``).  The query was refused whole — never answered
    from a silently partial merge."""


def _check_wire_format(wire_format: str) -> str:
    if wire_format not in WIRE_FORMATS:
        raise ValueError(f"wire_format must be one of {WIRE_FORMATS}, "
                         f"got {wire_format!r}")
    return wire_format


def _check_negotiated(reply: Dict[str, object], wire_format: str) -> tuple:
    advertised = tuple(reply.get("wire_formats", ("json",)))
    if wire_format not in advertised:
        raise ServerError(f"server does not accept {wire_format!r} reports "
                          f"frames (advertised: {advertised})")
    return advertised


def _check_reply(reply: Optional[Dict[str, object]],
                 expected: str) -> Dict[str, object]:
    if reply is None:
        raise FrameError("server closed the connection mid-request")
    if reply.get("type") == "error":
        if reply.get("code") == "shard_unavailable":
            raise ShardUnavailable(str(reply.get("error")))
        raise ServerError(str(reply.get("error")))
    if reply.get("type") != expected:
        raise FrameError(f"expected a {expected!r} reply, got "
                         f"{reply.get('type')!r}")
    return reply


class AggregationClient:
    """Blocking client for one server connection (usable as a context manager)."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = DEFAULT_TIMEOUT,
                 wire_format: str = "json") -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.wire_format = _check_wire_format(wire_format)
        self.server_wire_formats: Optional[tuple] = None
        # The timeout sticks to the socket: every subsequent send/recv
        # (not just connect) raises TimeoutError after `timeout` seconds
        # of stall, so a wedged server cannot hang the caller.
        self._sock = socket.create_connection((host, self.port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._stream = self._sock.makefile("rwb")

    # ----- plumbing ------------------------------------------------------------------

    def _request(self, frame: Dict[str, object],
                 expected: str) -> Dict[str, object]:
        write_frame_sync(self._stream, frame)
        return _check_reply(read_frame_sync(self._stream), expected)

    def close(self) -> None:
        self._stream.close()
        self._sock.close()

    def __enter__(self) -> "AggregationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----- frame vocabulary ----------------------------------------------------------

    def hello(self) -> PublicParams:
        """Fetch the server's published parameters and negotiate the format.

        The reply advertises the server's accepted ``wire_formats`` (stored
        on ``self.server_wire_formats``); if this client's own format is
        not among them a :class:`ServerError` is raised up front instead of
        every later batch being silently rejected.
        """
        reply = self._request({"type": "hello"}, "params")
        self.server_wire_formats = _check_negotiated(reply, self.wire_format)
        return PublicParams.from_dict(dict(reply["params"]))

    def send_batch(self, batch: ReportBatch, epoch: int = 0,
                   encoding: str = "b64",
                   wire_format: Optional[str] = None,
                   route: Optional[int] = None) -> None:
        """Ship one report batch (fire-and-forget; no reply frame).

        ``wire_format`` defaults to the connection's; ``encoding`` selects
        the JSON column encoding and is ignored for binary frames.  A
        non-``None`` ``route`` stamps the shard-routing header (used when
        the peer is a :class:`~repro.cluster.ClusterRouter`; a plain server
        ignores it).
        """
        wire_format = _check_wire_format(wire_format or self.wire_format)
        self._stream.write(encode_reports_frame(batch, epoch, wire_format,
                                                encoding, route=route))
        self._stream.flush()

    def send_raw(self, frames: bytes) -> None:
        """Ship pre-encoded ``reports`` frames (the benchmark fast path)."""
        self._stream.write(frames)
        self._stream.flush()

    def sync(self) -> int:
        """Barrier for *this connection's* prior sends; returns the absorbed count.

        The server processes a connection's frames in order and replies only
        after its ingestion queue has fully drained, so every batch sent on
        this connection beforehand is absorbed.  Batches other connections
        sent may still be in their sockets — each sender syncs for itself.
        """
        reply = self._request({"type": "sync"}, "synced")
        return int(reply["num_reports"])

    def query(self, items: Sequence[int],
              window: Optional[int] = None) -> np.ndarray:
        """Live frequency estimates for ``items`` over the last ``window`` epochs."""
        frame: Dict[str, object] = {"type": "query",
                                    "items": [int(x) for x in items]}
        if window is not None:
            frame["window"] = int(window)
        reply = self._request(frame, "estimates")
        return np.asarray(reply["estimates"], dtype=float)

    def pull_state(self, window: Optional[int] = None,
                   min_epoch: Optional[int] = None) -> Dict[str, object]:
        """Pull the merged exact-integer aggregator state (drains first).

        Returns the reply dictionary with ``"state"`` already unpacked to a
        ``child_state`` payload — load it with
        ``load_child_state(params.make_aggregator(), reply["state"])``.
        This is the cluster router's query primitive: pull every shard's
        state, merge, finalize once.
        """
        frame: Dict[str, object] = {"type": "state"}
        if window is not None:
            frame["window"] = int(window)
        if min_epoch is not None:
            frame["min_epoch"] = int(min_epoch)
        reply = self._request(frame, "state")
        reply["state"] = unpack_state(base64.b64decode(str(reply["state"])))
        return reply

    def snapshot(self) -> str:
        """Ask the server to write a durable snapshot; returns its path."""
        reply = self._request({"type": "snapshot"}, "snapshot_written")
        return str(reply["path"])

    def stats(self) -> Dict[str, object]:
        """Server ingestion counters and window occupancy."""
        return self._request({"type": "stats"}, "stats")

    def health(self) -> Dict[str, object]:
        """Liveness probe; a cluster router replies with per-shard status."""
        return self._request({"type": "health"}, "health")

    # ----- cluster membership (router peers only) ------------------------------------

    def shard_map(self) -> Dict[str, object]:
        """The router's current versioned shard map (plus its newest epoch)."""
        return self._request({"type": "shard_map"}, "shard_map")

    def add_shard(self) -> Dict[str, object]:
        """Grow the cluster by one shard at the next epoch cut (§7.4)."""
        return self._request({"type": "add_shard"}, "shard_added")

    def drain_shard(self, shard: int,
                    target: Optional[int] = None) -> Dict[str, object]:
        """Drain ``shard``: reroute, hand its exact state off, then reap it."""
        frame: Dict[str, object] = {"type": "drain_shard",
                                    "shard": int(shard)}
        if target is not None:
            frame["target"] = int(target)
        return self._request(frame, "drained")

    def rolling_restart(self) -> Dict[str, object]:
        """Checkpoint-restart every shard in sequence, zero data loss."""
        return self._request({"type": "rolling_restart"}, "restarted")

    def shutdown(self) -> int:
        """Stop the server (drains first); returns the final report count."""
        reply = self._request({"type": "shutdown"}, "bye")
        return int(reply["num_reports"])


class AsyncAggregationClient:
    """Asyncio flavor of :class:`AggregationClient` (same frames, same server)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 wire_format: str = "json",
                 timeout: Optional[float] = DEFAULT_TIMEOUT) -> None:
        self._reader = reader
        self._writer = writer
        self.wire_format = _check_wire_format(wire_format)
        self.timeout = timeout
        self.server_wire_formats: Optional[tuple] = None

    @classmethod
    async def connect(cls, host: str, port: int,
                      wire_format: str = "json",
                      timeout: Optional[float] = DEFAULT_TIMEOUT
                      ) -> "AsyncAggregationClient":
        open_conn = asyncio.open_connection(host, int(port))
        if timeout is None:
            reader, writer = await open_conn
        else:
            try:
                reader, writer = await asyncio.wait_for(open_conn, timeout)
            except asyncio.TimeoutError:
                # On 3.10 asyncio.TimeoutError is not the builtin; normalize
                # so callers catch one exception type on every Python.
                raise TimeoutError(
                    f"connect to {host}:{port} timed out after "
                    f"{timeout}s") from None
        return cls(reader, writer, wire_format, timeout)

    @classmethod
    async def dial(cls, address: str,
                   wire_format: str = "json",
                   timeout: Optional[float] = DEFAULT_TIMEOUT
                   ) -> "AsyncAggregationClient":
        """Connect over any registered transport (``tcp://host:port``,
        ``shm://name``) — identical frames and vocabulary either way."""
        # Lazy: repro.transport imports repro.server.framing, so importing
        # it at module level would cycle through this package's __init__.
        from repro.transport import dial as transport_dial

        conn = await transport_dial(address, timeout=timeout)
        return cls(conn.reader, conn.writer, wire_format, timeout)

    async def _deadline(self, awaitable, what: str):
        if self.timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self.timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(f"{what} timed out after "
                               f"{self.timeout}s") from None

    async def _request(self, frame: Dict[str, object],
                       expected: str) -> Dict[str, object]:
        async def exchange() -> Optional[Dict[str, object]]:
            await write_frame(self._writer, frame)
            return await read_frame(self._reader)
        reply = await self._deadline(exchange(),
                                     f"{frame.get('type')!r} request")
        return _check_reply(reply, expected)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncAggregationClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def hello(self) -> PublicParams:
        reply = await self._request({"type": "hello"}, "params")
        self.server_wire_formats = _check_negotiated(reply, self.wire_format)
        return PublicParams.from_dict(dict(reply["params"]))

    async def send_batch(self, batch: ReportBatch, epoch: int = 0,
                         encoding: str = "b64",
                         wire_format: Optional[str] = None,
                         route: Optional[int] = None) -> None:
        wire_format = _check_wire_format(wire_format or self.wire_format)
        self._writer.write(encode_reports_frame(batch, epoch, wire_format,
                                                encoding, route=route))
        await self._deadline(self._writer.drain(), "reports send")

    async def send_raw(self, frames: bytes) -> None:
        """Ship pre-encoded ``reports`` frames (the benchmark fast path)."""
        self._writer.write(frames)
        await self._deadline(self._writer.drain(), "raw send")

    async def send_stream(self, batches, epoch: int = 0,
                          encoding: str = "b64",
                          wire_format: Optional[str] = None) -> int:
        """Ship an iterable of batches; returns the number of reports sent."""
        sent = 0
        for batch in batches:
            await self.send_batch(batch, epoch, encoding, wire_format)
            sent += len(batch)
        return sent

    async def sync(self) -> int:
        reply = await self._request({"type": "sync"}, "synced")
        return int(reply["num_reports"])

    async def query(self, items: Sequence[int],
                    window: Optional[int] = None) -> np.ndarray:
        frame: Dict[str, object] = {"type": "query",
                                    "items": [int(x) for x in items]}
        if window is not None:
            frame["window"] = int(window)
        reply = await self._request(frame, "estimates")
        return np.asarray(reply["estimates"], dtype=float)

    async def pull_state(self, window: Optional[int] = None,
                         min_epoch: Optional[int] = None) -> Dict[str, object]:
        frame: Dict[str, object] = {"type": "state"}
        if window is not None:
            frame["window"] = int(window)
        if min_epoch is not None:
            frame["min_epoch"] = int(min_epoch)
        reply = await self._request(frame, "state")
        reply["state"] = unpack_state(base64.b64decode(str(reply["state"])))
        return reply

    async def snapshot(self) -> str:
        reply = await self._request({"type": "snapshot"}, "snapshot_written")
        return str(reply["path"])

    async def stats(self) -> Dict[str, object]:
        return await self._request({"type": "stats"}, "stats")

    async def health(self) -> Dict[str, object]:
        return await self._request({"type": "health"}, "health")

    async def shard_map(self) -> Dict[str, object]:
        return await self._request({"type": "shard_map"}, "shard_map")

    async def add_shard(self) -> Dict[str, object]:
        return await self._request({"type": "add_shard"}, "shard_added")

    async def drain_shard(self, shard: int,
                          target: Optional[int] = None) -> Dict[str, object]:
        frame: Dict[str, object] = {"type": "drain_shard",
                                    "shard": int(shard)}
        if target is not None:
            frame["target"] = int(target)
        return await self._request(frame, "drained")

    async def rolling_restart(self) -> Dict[str, object]:
        return await self._request({"type": "rolling_restart"}, "restarted")

    async def shutdown(self) -> int:
        reply = await self._request({"type": "shutdown"}, "bye")
        return int(reply["num_reports"])
