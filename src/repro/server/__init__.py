"""Streaming aggregation service over the client/server wire API.

This package turns the simulation-oriented wire API of :mod:`repro.protocol`
into an actual long-lived service: an asyncio TCP server that a fleet of
clients streams :class:`~repro.protocol.wire.ReportBatch` payloads to, with
live queries, durable crash-safe snapshots, and windowed (epoch-rolled)
collection.  The layer map (see ``docs/architecture.md``):

* :mod:`repro.server.framing` — length-prefixed frames (the transport):
  JSON control frames plus zero-copy binary ``reports`` frames
  (``docs/wire-protocol.md`` §8), distinguished by the payload magic byte;
* :mod:`repro.server.window`  — :class:`WindowedAggregator`, epoch-tagged
  aggregators with a rolling bit-exact merge;
* :mod:`repro.server.snapshot` — atomic durable snapshot files
  (:class:`SnapshotStore`);
* :mod:`repro.server.service` — :class:`AggregationServer`, the bounded-queue
  ingestion loop and frame dispatcher;
* :mod:`repro.server.client`  — :class:`AggregationClient` (blocking) and
  :class:`AsyncAggregationClient` (asyncio).

Quick start (or ``python -m repro.cli serve`` / ``load-test``)::

    import asyncio
    from repro.protocol import HashtogramParams
    from repro.server import AggregationServer, AggregationClient

    params = HashtogramParams.create(1 << 16, 1.0, num_buckets=64, rng=0)

    async def main():
        server = AggregationServer(params, snapshot_dir="ckpt")
        host, port = await server.start()
        # ... clients connect, stream batches, query live estimates ...
        await server.serve_until_stopped()

The guarantee this package inherits from the merge algebra: a served
estimate equals — bit for bit — the offline
:func:`repro.engine.run_simulation` estimate over the same reports, no
matter how the reports were batched, interleaved across connections, or
checkpoint/restored in between.
"""

from repro.server.client import (
    AggregationClient,
    AsyncAggregationClient,
    ServerError,
    ShardUnavailable,
)
from repro.server.framing import (
    WIRE_FORMATS,
    FrameError,
    decode_frame,
    encode_frame,
    encode_reports_frame,
    frame_bytes,
    read_frame,
    read_frame_payload,
    read_frame_sync,
    write_frame,
    write_frame_sync,
)
from repro.server.service import AggregationServer, ServerStats
from repro.server.snapshot import SnapshotStore, read_snapshot, write_snapshot
from repro.server.window import WindowedAggregator

__all__ = [
    "AggregationClient",
    "AggregationServer",
    "AsyncAggregationClient",
    "FrameError",
    "ServerError",
    "ShardUnavailable",
    "ServerStats",
    "SnapshotStore",
    "WIRE_FORMATS",
    "WindowedAggregator",
    "decode_frame",
    "encode_frame",
    "encode_reports_frame",
    "frame_bytes",
    "read_frame",
    "read_frame_payload",
    "read_frame_sync",
    "read_snapshot",
    "write_frame",
    "write_frame_sync",
    "write_snapshot",
]
