"""Length-prefixed framing for the streaming aggregation service.

Every message on a server connection — in either direction — is one *frame*:
a 4-byte big-endian payload length followed by the payload.  Two frame
classes share the prefix and are told apart by the payload's first byte:

```
+----------------+---------------------------+
| 4 bytes (!I)   | UTF-8 JSON object         |   first byte '{' (0x7B)
| payload length | {"type": ..., ...}        |
+----------------+---------------------------+
| 4 bytes (!I)   | binary columnar payload   |   first byte 0xB1
| payload length | (repro.protocol.binary)   |
+----------------+---------------------------+
```

JSON frames carry the full control vocabulary (``hello`` / ``reports`` /
``sync`` / ``query`` / ``snapshot`` / ``stats`` / ``shutdown`` and their
replies, specified in ``docs/wire-protocol.md`` §7).  Binary frames carry
only ``reports``: the batch columns travel as raw little-endian bytes
behind a fixed struct header (``docs/wire-protocol.md`` §8) and decode to
**read-only zero-copy** numpy views — no JSON, no base64, no intermediate
dict.  ``decode_frame`` normalizes both classes to the same message shape;
a binary ``reports`` message carries an already-decoded
:class:`~repro.protocol.wire.ReportBatch` under ``"batch"``.

The JSON ``reports`` path remains the default and the compatibility/debug
format; clients opt into binary per connection (``wire_format="binary"``)
after ``hello`` advertises the server's accepted formats.

Both an asyncio flavor (:func:`read_frame` / :func:`write_frame`, used by
the server and the async client) and a blocking flavor
(:func:`read_frame_sync` / :func:`write_frame_sync` over a socket file
object, used by the sync client and the load generator) are provided; the
bytes on the wire are identical.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import BinaryIO, Dict, Optional

from repro.protocol.binary import (
    BinaryFormatError,
    decode_reports_payload,
    encode_reports_payload,
    is_binary_payload,
    peek_reports_header,
)
from repro.protocol.wire import ReportBatch

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "WIRE_FORMATS",
    "encode_frame",
    "encode_reports_frame",
    "decode_frame",
    "frame_bytes",
    "read_frame",
    "read_frame_payload",
    "write_frame",
    "read_frame_sync",
    "write_frame_sync",
]

#: hard ceiling on a single frame's payload; a larger announced length is
#: treated as a protocol violation, not an allocation request.  The binary
#: writer checks its *announced* size against this limit before serializing
#: a single column byte.
MAX_FRAME_BYTES = 1 << 30

#: the wire formats a `reports` frame can travel in
WIRE_FORMATS = ("json", "binary")

_HEADER = struct.Struct("!I")


class FrameError(ValueError):
    """A malformed frame: bad length prefix, truncation, invalid JSON, or a
    corrupted/oversized binary payload."""


def encode_frame(message: Dict[str, object]) -> bytes:
    """Serialize one JSON frame (header + compact JSON payload) to bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def encode_reports_frame(batch: ReportBatch, epoch: int = 0,
                         wire_format: str = "json",
                         encoding: str = "b64",
                         route: Optional[int] = None,
                         seq: Optional[int] = None) -> bytes:
    """Serialize one ``reports`` frame in the chosen wire format.

    ``wire_format="json"`` produces the legacy JSON frame with the given
    column ``encoding`` (``"b64"`` or ``"json"``); ``"binary"`` produces a
    binary frame whose announced size is validated against
    :data:`MAX_FRAME_BYTES` *before* any column is serialized.

    A non-``None`` ``route`` stamps the shard-routing header onto the frame
    (JSON: a top-level ``"route"`` key; binary: the ``FLAG_ROUTED`` header
    field) — a cluster router partitions on it without decoding columns,
    and a plain :class:`~repro.server.service.AggregationServer` ignores it.
    A non-``None`` ``seq`` stamps the delivery sequence number (JSON: a
    top-level ``"seq"`` key; binary: the ``FLAG_SEQUENCED`` header field)
    used for exact redelivery detection on journal replay (§7.1); normal
    clients leave it to the router.
    """
    if wire_format == "json":
        message = {"type": "reports", "epoch": int(epoch),
                   "batch": batch.to_dict(encoding)}
        if route is not None:
            message["route"] = int(route)
        if seq is not None:
            message["seq"] = int(seq)
        return encode_frame(message)
    if wire_format != "binary":
        raise ValueError(f"wire_format must be one of {WIRE_FORMATS}, "
                         f"got {wire_format!r}")
    try:
        payload = encode_reports_payload(batch, epoch,
                                         max_bytes=MAX_FRAME_BYTES,
                                         route=route, seq=seq)
    except BinaryFormatError as exc:
        raise FrameError(str(exc)) from exc
    return _HEADER.pack(len(payload)) + payload


def frame_bytes(payload: bytes) -> bytes:
    """Wrap an already-encoded frame payload in its length prefix.

    The cluster router's forwarding primitive: a received ``reports``
    payload is re-framed and shipped to its shard byte-for-byte, without a
    decode/re-encode round trip.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, object]:
    """Parse a frame payload of either class into one message dictionary.

    JSON payloads must be JSON objects and are returned as-is.  Binary
    payloads decode to ``{"type": "reports", "epoch": e, "batch": <batch>,
    "wire_format": "binary"}`` where ``batch`` is a ready
    :class:`~repro.protocol.wire.ReportBatch` whose columns are read-only
    zero-copy views over ``payload``; a routed/sequenced payload also
    carries its ``"route"`` / ``"seq"`` header fields, mirroring the JSON
    top-level keys.
    """
    if is_binary_payload(payload):
        try:
            header = peek_reports_header(payload)
            epoch, batch = decode_reports_payload(payload)
        except ValueError as exc:  # includes BinaryFormatError
            raise FrameError(f"invalid binary frame: {exc}") from exc
        message: Dict[str, object] = {"type": "reports", "epoch": epoch,
                                      "batch": batch,
                                      "wire_format": "binary"}
        if header["route"] is not None:
            message["route"] = header["route"]
        if header["seq"] is not None:
            message["seq"] = header["seq"]
        return message
    try:
        message = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        # UnicodeDecodeError: json.loads decodes raw bytes itself, and
        # garbage that is neither the binary magic nor UTF-8 (e.g. a
        # corrupted-in-flight frame) must reject cleanly, not crash the
        # connection handler.
        raise FrameError(f"invalid JSON in frame: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("frame payload must be a JSON object")
    return message


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"announced frame length {length} exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return length


async def read_frame_payload(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame's raw payload bytes; ``None`` on clean EOF.

    The router-side primitive: the payload is returned *undecoded* so it
    can be forwarded verbatim (:func:`frame_bytes`) after peeking only the
    routing header.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    try:
        return await reader.readexactly(_check_length(length))
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc


async def read_frame(reader: asyncio.StreamReader
                     ) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    payload = await read_frame_payload(reader)
    if payload is None:
        return None
    return decode_frame(payload)


async def write_frame(writer: asyncio.StreamWriter,
                      message: Dict[str, object]) -> None:
    """Write one JSON frame and drain the transport (applies backpressure)."""
    writer.write(encode_frame(message))
    await writer.drain()


def read_frame_sync(stream: BinaryIO) -> Optional[Dict[str, object]]:
    """Blocking :func:`read_frame` over a socket file object."""
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise FrameError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    payload = stream.read(_check_length(length))
    if payload is None or len(payload) < length:
        raise FrameError("connection closed mid-frame")
    return decode_frame(payload)


def write_frame_sync(stream: BinaryIO, message: Dict[str, object]) -> None:
    """Blocking :func:`write_frame` over a socket file object."""
    stream.write(encode_frame(message))
    stream.flush()
