"""Length-prefixed JSON framing for the streaming aggregation service.

Every message on a server connection — in either direction — is one *frame*:

```
+----------------+---------------------------+
| 4 bytes (!I)   | UTF-8 JSON object         |
| payload length | {"type": ..., ...}        |
+----------------+---------------------------+
```

The payload is always a JSON object with a mandatory ``type`` field; the
frame vocabulary (``hello`` / ``reports`` / ``sync`` / ``query`` /
``snapshot`` / ``stats`` / ``shutdown`` and their replies) is specified in
``docs/wire-protocol.md`` §7.  Report batches travel inside ``reports``
frames as :meth:`repro.protocol.wire.ReportBatch.to_dict` payloads — the
base64 column encoding by default, which keeps frame decoding one
``json.loads`` plus one ``base64`` pass per batch.

Both an asyncio flavor (:func:`read_frame` / :func:`write_frame`, used by
the server and the async client) and a blocking flavor
(:func:`read_frame_sync` / :func:`write_frame_sync` over a socket file
object, used by the sync client and the load generator) are provided; the
bytes on the wire are identical.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import BinaryIO, Dict, Optional

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "read_frame_sync",
    "write_frame_sync",
]

#: hard ceiling on a single frame's payload; a larger announced length is
#: treated as a protocol violation, not an allocation request
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct("!I")


class FrameError(ValueError):
    """A malformed frame: bad length prefix, truncation, or invalid JSON."""


def encode_frame(message: Dict[str, object]) -> bytes:
    """Serialize one frame (header + compact JSON payload) to bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, object]:
    """Parse a frame payload; every frame must be a JSON object."""
    try:
        message = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise FrameError(f"invalid JSON in frame: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("frame payload must be a JSON object")
    return message


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"announced frame length {length} exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return length


async def read_frame(reader: asyncio.StreamReader
                     ) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    try:
        payload = await reader.readexactly(_check_length(length))
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return decode_frame(payload)


async def write_frame(writer: asyncio.StreamWriter,
                      message: Dict[str, object]) -> None:
    """Write one frame and drain the transport (applies backpressure)."""
    writer.write(encode_frame(message))
    await writer.drain()


def read_frame_sync(stream: BinaryIO) -> Optional[Dict[str, object]]:
    """Blocking :func:`read_frame` over a socket file object."""
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise FrameError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    payload = stream.read(_check_length(length))
    if payload is None or len(payload) < length:
        raise FrameError("connection closed mid-frame")
    return decode_frame(payload)


def write_frame_sync(stream: BinaryIO, message: Dict[str, object]) -> None:
    """Blocking :func:`write_frame` over a socket file object."""
    stream.write(encode_frame(message))
    stream.flush()
