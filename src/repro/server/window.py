"""Windowed collection: epoch-tagged aggregators with a rolling merge.

The paper's protocols aggregate one static population; a telemetry service
instead collects *forever*, and wants queries like "the heavy hitters of the
last 24 hours".  :class:`WindowedAggregator` opens that scenario on top of
the merge algebra of :mod:`repro.protocol`:

* every report batch is tagged with an integer **epoch** (an hour, a day —
  the caller's clock discretization; the default epoch is 0, which recovers
  plain unwindowed collection);
* each epoch owns one exact-integer :class:`~repro.protocol.wire.ServerAggregator`;
* a query over the last ``w`` epochs is answered by merging those epoch
  aggregators (commutative, associative, bit-exact) and finalizing the
  merged copy — the per-epoch states are never mutated by queries;
* with a retention ``window`` configured, epochs that fall out of the window
  are dropped as newer epochs arrive, so server memory stays
  ``window * state_size`` scalars regardless of how long the service runs.

Because merging is bit-exact, a windowed server that ingested epochs
``e-w+1 .. e`` answers exactly what a fresh single-shot server fed only
those epochs' reports would answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.protocol.wire import (
    PublicParams,
    ReportBatch,
    ServerAggregator,
    child_state,
    load_child_state,
    merge_aggregators,
)

__all__ = ["WindowedAggregator", "WINDOW_SNAPSHOT_FORMAT"]

#: identifying tag of a windowed snapshot payload
WINDOW_SNAPSHOT_FORMAT = "repro-windowed-snapshot"
_WINDOW_SNAPSHOT_VERSION = 1


class WindowedAggregator:
    """A rolling collection of per-epoch aggregators for one protocol.

    Parameters
    ----------
    params:
        Public parameters of any registered wire protocol.
    window:
        Retention in epochs.  ``None`` (default) retains every epoch —
        unbounded collection; ``w >= 1`` keeps only the ``w`` newest epoch
        tags and rejects reports for epochs that have already been dropped.
    """

    def __init__(self, params: PublicParams,
                 window: Optional[int] = None) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        self.params = params
        self.window = window
        self._epochs: Dict[int, ServerAggregator] = {}

    # ----- ingestion ----------------------------------------------------------------

    def absorb_batch(self, batch: ReportBatch, epoch: int = 0,
                     atomic: bool = False) -> None:
        """Fold one batch into its epoch's aggregator (creating it on demand).

        With ``atomic=True`` the epoch's integer state is backed up first
        and rolled back if ``absorb_batch`` raises partway through — a
        malformed batch absorbed into a *composite* aggregator (Hashtogram's
        per-repetition accumulators, the heavy-hitters stage-1 arrays) could
        otherwise mutate some children before failing, silently corrupting
        the aggregate.  The ingestion server always absorbs atomically;
        trusted in-process pipelines can skip the backup cost.
        """
        epoch = int(epoch)
        aggregator = self._epochs.get(epoch)
        fresh = aggregator is None
        if fresh:
            if self.window is not None and self._epochs and \
                    epoch <= max(self._epochs) - self.window:
                raise ValueError(
                    f"epoch {epoch} is outside the retention window "
                    f"(newest epoch {max(self._epochs)}, window {self.window})")
            aggregator = self.params.make_aggregator()
        backup = (child_state(aggregator)
                  if atomic and not fresh else None)
        try:
            aggregator.absorb_batch(batch)
        except Exception:
            # A fresh aggregator was never registered, so only a pre-existing
            # epoch needs its state rolled back.
            if backup is not None:
                load_child_state(aggregator, backup)
            raise
        if fresh:
            self._epochs[epoch] = aggregator
            self._prune()

    def _prune(self) -> None:
        if self.window is None:
            return
        cutoff = max(self._epochs) - self.window
        for epoch in [e for e in self._epochs if e <= cutoff]:
            del self._epochs[epoch]

    # ----- inspection ---------------------------------------------------------------

    @property
    def epochs(self) -> List[int]:
        """Retained epoch tags, oldest first."""
        return sorted(self._epochs)

    @property
    def num_reports(self) -> int:
        """Total reports across every retained epoch."""
        return sum(agg.num_reports for agg in self._epochs.values())

    @property
    def state_size(self) -> int:
        """Total scalars retained across every epoch aggregator."""
        return sum(agg.state_size for agg in self._epochs.values())

    # ----- windowed queries ---------------------------------------------------------

    def set_window(self, window: Optional[int]) -> None:
        """Change the retention window in place (pruning immediately).

        Lets an operator tighten retention when restoring from a snapshot
        taken under a wider (or unbounded) window.
        """
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        self.window = window
        if self._epochs:
            self._prune()

    def select_epochs(self, window: Optional[int] = None,
                      min_epoch: Optional[int] = None) -> List[int]:
        """The epoch tags a query over the last ``window`` epochs covers.

        Windows are *value*-based, matching retention: the selected epochs
        are those ``> newest - window``.  With dense epoch tags that is the
        newest ``window`` tags; with sparse tags it correctly excludes
        epochs older than the window even when few tags exist.

        ``min_epoch`` is the *absolute* form of the same cutoff: it selects
        the epochs ``> min_epoch`` regardless of what this aggregator's
        newest epoch is.  A cluster router uses it to make windowed queries
        exact across shards — ``window`` is relative to each shard's own
        newest epoch, so the router computes the global newest once and
        passes every shard the same absolute cutoff.  The two selectors are
        mutually exclusive.
        """
        if window is not None and min_epoch is not None:
            raise ValueError("window and min_epoch are mutually exclusive")
        if window is not None and window < 1:
            raise ValueError("query window must be >= 1")
        epochs = sorted(self._epochs)
        if not epochs or (window is None and min_epoch is None):
            return epochs
        cutoff = epochs[-1] - window if min_epoch is None else int(min_epoch)
        return [epoch for epoch in epochs if epoch > cutoff]

    def merged(self, window: Optional[int] = None,
               min_epoch: Optional[int] = None) -> ServerAggregator:
        """Bit-exact merge of the last ``window`` epochs (default: all retained).

        Returns a *new* aggregator when more than one epoch participates (the
        merge algebra is pure); with a single epoch the live aggregator is
        returned directly, so callers must treat the result as read-only.
        An empty window merges to a fresh, empty aggregator.
        """
        selected = self.select_epochs(window, min_epoch)
        if not selected:
            return self.params.make_aggregator()
        return merge_aggregators([self._epochs[e] for e in selected])

    def finalize(self, window: Optional[int] = None,
                 min_epoch: Optional[int] = None):
        """Finalize the merged last-``window``-epochs aggregate into an estimator."""
        return self.merged(window, min_epoch).finalize()

    # ----- durable snapshots --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe checkpoint of every retained epoch (see module docstring)."""
        return {"format": WINDOW_SNAPSHOT_FORMAT,
                "version": _WINDOW_SNAPSHOT_VERSION,
                "params": self.params.to_dict(),
                "window": self.window,
                "epochs": [{"epoch": int(epoch),
                            **child_state(self._epochs[epoch])}
                           for epoch in sorted(self._epochs)]}

    def merge_snapshot(self, data: Dict[str, object]) -> int:
        """Fold another windowed snapshot into this one, epoch by epoch.

        The wholesale-state half of a shard drain: the drained shard's
        :meth:`snapshot` payload is merged into a survivor with the same
        commutative integer-sum merge queries use, so the union aggregate
        is bit-identical to one server that ingested both shards' reports.
        Epochs already outside this aggregator's retention window are
        skipped — exactly what a single server would have pruned.  Returns
        the number of reports folded in.
        """
        if data.get("format") != WINDOW_SNAPSHOT_FORMAT:
            raise ValueError(f"not a windowed snapshot: "
                             f"format={data.get('format')!r}")
        version = int(data.get("version", 0))
        if version != _WINDOW_SNAPSHOT_VERSION:
            raise ValueError(f"unsupported windowed snapshot version {version}")
        params = PublicParams.from_dict(dict(data["params"]))
        if params != self.params:
            raise ValueError("cannot merge a snapshot taken under different "
                             "public parameters")
        absorbed = 0
        for entry in data["epochs"]:
            epoch = int(entry["epoch"])
            incoming = self.params.make_aggregator()
            load_child_state(incoming, entry)
            existing = self._epochs.get(epoch)
            if existing is None:
                if self.window is not None and self._epochs and \
                        epoch <= max(self._epochs) - self.window:
                    continue
                self._epochs[epoch] = incoming
            else:
                self._epochs[epoch] = merge_aggregators([existing, incoming])
            absorbed += incoming.num_reports
        if self._epochs:
            self._prune()
        return absorbed

    @staticmethod
    def from_snapshot(data: Dict[str, object]) -> "WindowedAggregator":
        """Rebuild a windowed collection from :meth:`snapshot` output."""
        if data.get("format") != WINDOW_SNAPSHOT_FORMAT:
            raise ValueError(f"not a windowed snapshot: "
                             f"format={data.get('format')!r}")
        version = int(data.get("version", 0))
        if version != _WINDOW_SNAPSHOT_VERSION:
            raise ValueError(f"unsupported windowed snapshot version {version}")
        params = PublicParams.from_dict(dict(data["params"]))
        window = data.get("window")
        windowed = WindowedAggregator(
            params, int(window) if window is not None else None)
        for entry in data["epochs"]:
            aggregator = params.make_aggregator()
            load_child_state(aggregator, entry)
            windowed._epochs[int(entry["epoch"])] = aggregator
        return windowed
