"""Durable snapshot files for the aggregation service.

A snapshot is the payload of
:meth:`repro.server.window.WindowedAggregator.snapshot` written to disk in
one of two encodings:

* ``"json"`` (default) — the payload as one compact JSON document, exactly
  as before: human-readable, diff-friendly, and integer-exact.
* ``"binary"`` — the same payload through the columnar state container of
  :mod:`repro.protocol.binary` (``pack_state``): the large integer
  accumulator arrays ship as narrowed raw little-endian bytes behind a
  struct header instead of million-element JSON lists, which makes
  checkpointing large aggregators several times smaller and faster.

Because every aggregator keeps exact integer state and integers survive
both encodings exactly, ``restore → absorb more → finalize`` is
**bit-identical** to a server that never crashed (asserted per protocol in
``tests/test_snapshot.py`` and ``tests/test_wire_binary.py``, and
end-to-end, across a ``SIGKILL``, in ``tests/test_server.py``).

Either encoding is wrapped in a fixed **checksummed container** (normative
layout in ``docs/wire-protocol.md`` §6.2)::

    container := snapshot_magic (u32) | crc32 (u32) | length (u32) | body

with all header fields little-endian, ``crc32`` the CRC-32 of ``body``
(:func:`zlib.crc32`), and ``length`` the body size in bytes.  A restore
verifies both fields before parsing a single byte of state and raises the
typed :class:`SnapshotCorruptError` on any mismatch — a flipped bit or a
short read can never be absorbed as garbage aggregator state.  Headerless
files written before the container existed still restore through the same
sniffing path (JSON documents start with ``{``, binary state containers
with the ``0xB1`` magic), so old restore points stay valid.

Files are written atomically: temp file + ``fsync`` of the file **and** of
its directory entry around ``os.replace``, so a crash (or whole-host power
loss) during checkpointing can never leave a truncated or unlinked
snapshot as the newest one.  :class:`SnapshotStore` keeps a bounded
history (newest ``keep`` files) with monotonically increasing sequence
numbers; :meth:`SnapshotStore.latest_valid` walks that history newest →
oldest past corrupt files, which is what lets a supervisor restart a shard
whose newest checkpoint was damaged on disk instead of restoring garbage
or refusing to start.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.protocol.binary import is_binary_payload, pack_state, unpack_state

__all__ = ["SNAPSHOT_FORMATS", "SNAPSHOT_MAGIC", "SnapshotCorruptError",
           "SnapshotStore", "fsync_directory", "read_snapshot",
           "write_snapshot"]

#: supported on-disk snapshot encodings
SNAPSHOT_FORMATS = ("json", "binary")

#: first four bytes of a checksummed snapshot container — ``b"RSNP"`` on
#: disk; can never open a legacy file (those start with ``{`` or ``0xB1``)
SNAPSHOT_MAGIC = 0x504E5352

#: container header: magic (u32) | crc32-of-body (u32) | body length (u32),
#: little-endian — ``docs/wire-protocol.md`` §6.2
_CONTAINER_HEADER = struct.Struct("<III")

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{6})\.(json|bin)$")
_SUFFIXES = {"json": ".json", "binary": ".bin"}


class SnapshotCorruptError(ValueError):
    """A snapshot file failed its integrity check: bad container header,
    CRC-32 mismatch, truncated body, or an unparseable state payload.

    Raised *before* any state is absorbed — a corrupted restore is always
    loud, never silent garbage."""


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory entry to disk (the second half of a durable rename).

    ``os.replace`` makes a rename atomic against crashes of *this* process,
    but only an ``fsync`` of the containing directory makes the new name
    durable against power loss.  Platforms whose directory handles reject
    ``fsync`` degrade to the plain atomic rename.
    """
    fd = os.open(os.fspath(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - non-POSIX directory handles
        pass
    finally:
        os.close(fd)


def _encode_body(payload: Dict[str, object], format: str) -> bytes:
    if format == "binary":
        return pack_state(payload)
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def write_snapshot(path: Union[str, Path], payload: Dict[str, object],
                   format: str = "json") -> Path:
    """Durably and atomically write one snapshot payload to ``path``.

    The payload body is framed in the checksummed container, the temp file
    is fsynced before the rename, and the directory entry is fsynced after
    it — the write is all-or-nothing even across power loss.
    """
    if format not in SNAPSHOT_FORMATS:
        raise ValueError(f"snapshot format must be one of {SNAPSHOT_FORMATS}, "
                         f"got {format!r}")
    path = Path(path)
    body = _encode_body(payload, format)
    header = _CONTAINER_HEADER.pack(SNAPSHOT_MAGIC, zlib.crc32(body),
                                    len(body))
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path


def _container_body(path: Union[str, Path], raw: bytes) -> bytes:
    """Verify the container header of ``raw`` and return the body bytes.

    Headerless (pre-container) files are returned unchanged — their first
    byte can never equal the container magic's first byte.
    """
    if len(raw) < 1 or raw[0] != (SNAPSHOT_MAGIC & 0xFF):
        return raw
    if len(raw) < _CONTAINER_HEADER.size:
        raise SnapshotCorruptError(f"{path}: truncated snapshot container "
                                   f"header ({len(raw)} bytes)")
    magic, crc, length = _CONTAINER_HEADER.unpack_from(raw, 0)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError(f"{path}: bad snapshot container magic "
                                   f"0x{magic:08x}")
    body = raw[_CONTAINER_HEADER.size:]
    if len(body) != length:
        raise SnapshotCorruptError(
            f"{path}: snapshot body is {len(body)} bytes but the container "
            f"announces {length}")
    actual = zlib.crc32(body)
    if actual != crc:
        raise SnapshotCorruptError(
            f"{path}: snapshot checksum mismatch (header 0x{crc:08x}, "
            f"body 0x{actual:08x})")
    return body


def read_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Read one snapshot payload written by :func:`write_snapshot`.

    The container checksum is verified first; the body encoding is then
    sniffed from its first byte, so JSON and binary snapshots — and
    headerless legacy files — restore through the same entry point.  Every
    integrity failure raises :class:`SnapshotCorruptError`.
    """
    raw = Path(path).read_bytes()
    body = _container_body(path, raw)
    try:
        if is_binary_payload(body):
            payload = unpack_state(body)
        else:
            payload = json.loads(body)
    except ValueError as exc:
        raise SnapshotCorruptError(f"{path}: unparseable snapshot body: "
                                   f"{exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotCorruptError(f"{path}: snapshot payload must be an "
                                   f"object")
    return payload


class SnapshotStore:
    """A directory of numbered snapshots with bounded history.

    ``save`` writes ``snapshot-000001.json`` / ``snapshot-000001.bin``
    (depending on the configured ``format``) atomically and deletes
    everything older than the newest ``keep`` files; ``latest`` /
    ``load_latest`` pick the highest sequence number across both suffixes,
    which — thanks to the atomic writes — is always a complete payload.
    ``latest_valid`` additionally verifies checksums, walking past corrupt
    files to the newest restorable one.
    """

    def __init__(self, directory: Union[str, Path], keep: int = 3,
                 format: str = "json") -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        if format not in SNAPSHOT_FORMATS:
            raise ValueError(f"snapshot format must be one of "
                             f"{SNAPSHOT_FORMATS}, got {format!r}")
        self.directory = Path(directory)
        self.keep = keep
        self.format = format
        self.directory.mkdir(parents=True, exist_ok=True)

    def _numbered(self) -> List[Path]:
        """Existing snapshot files, oldest first."""
        entries = []
        for path in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(path.name)
            if match:
                entries.append((int(match.group(1)), path))
        return [path for _, path in sorted(entries)]

    def save(self, payload: Dict[str, object]) -> Path:
        """Write the next numbered snapshot and prune old history."""
        existing = self._numbered()
        next_seq = 1
        if existing:
            next_seq = int(_SNAPSHOT_NAME.match(existing[-1].name).group(1)) + 1
        name = f"snapshot-{next_seq:06d}{_SUFFIXES[self.format]}"
        path = write_snapshot(self.directory / name, payload, self.format)
        for stale in self._numbered()[:-self.keep]:
            stale.unlink(missing_ok=True)
        return path

    def latest(self) -> Optional[Path]:
        """Path of the newest snapshot, or ``None`` when the store is empty."""
        existing = self._numbered()
        return existing[-1] if existing else None

    def latest_valid(self) -> Optional[Path]:
        """Path of the newest snapshot that passes its integrity check.

        Corrupt or unreadable files are skipped (newest → oldest), so one
        damaged checkpoint degrades recovery to the previous restore point
        instead of poisoning it; returns ``None`` when no file is valid.
        """
        for path in reversed(self._numbered()):
            try:
                read_snapshot(path)
            except (OSError, ValueError):
                continue
            return path
        return None

    def load_latest(self) -> Optional[Dict[str, object]]:
        """Payload of the newest snapshot, or ``None`` when the store is empty."""
        path = self.latest()
        return read_snapshot(path) if path is not None else None

    def load_latest_valid(self) -> Optional[Tuple[Path, Dict[str, object]]]:
        """``(path, payload)`` of the newest valid snapshot, or ``None``."""
        path = self.latest_valid()
        return (path, read_snapshot(path)) if path is not None else None
