"""Durable snapshot files for the aggregation service.

A snapshot is the JSON payload of
:meth:`repro.server.window.WindowedAggregator.snapshot` written to disk.
Because every aggregator keeps exact integer state and integers survive JSON
exactly, ``restore → absorb more → finalize`` is **bit-identical** to a
server that never crashed (asserted per protocol in
``tests/test_snapshot.py`` and end-to-end, across a ``SIGKILL``, in
``tests/test_server.py``).

Files are written atomically (temp file + ``os.replace``) so a crash during
checkpointing can never leave a truncated snapshot as the newest one, and
:class:`SnapshotStore` keeps a bounded history (newest ``keep`` files) with
monotonically increasing sequence numbers.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["SnapshotStore", "read_snapshot", "write_snapshot"]

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{6})\.json$")


def write_snapshot(path: Union[str, Path], payload: Dict[str, object]) -> Path:
    """Atomically write one snapshot payload to ``path``."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
    os.replace(tmp, path)
    return path


def read_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Read one snapshot payload written by :func:`write_snapshot`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: snapshot payload must be a JSON object")
    return payload


class SnapshotStore:
    """A directory of numbered snapshots with bounded history.

    ``save`` writes ``snapshot-000001.json``, ``snapshot-000002.json``, ...
    atomically and deletes everything older than the newest ``keep`` files;
    ``latest`` / ``load_latest`` pick the highest sequence number, which —
    thanks to the atomic writes — is always a complete payload.
    """

    def __init__(self, directory: Union[str, Path], keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    def _numbered(self) -> List[Path]:
        """Existing snapshot files, oldest first."""
        entries = []
        for path in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(path.name)
            if match:
                entries.append((int(match.group(1)), path))
        return [path for _, path in sorted(entries)]

    def save(self, payload: Dict[str, object]) -> Path:
        """Write the next numbered snapshot and prune old history."""
        existing = self._numbered()
        next_seq = 1
        if existing:
            next_seq = int(_SNAPSHOT_NAME.match(existing[-1].name).group(1)) + 1
        path = write_snapshot(self.directory / f"snapshot-{next_seq:06d}.json",
                              payload)
        for stale in self._numbered()[:-self.keep]:
            stale.unlink(missing_ok=True)
        return path

    def latest(self) -> Optional[Path]:
        """Path of the newest snapshot, or ``None`` when the store is empty."""
        existing = self._numbered()
        return existing[-1] if existing else None

    def load_latest(self) -> Optional[Dict[str, object]]:
        """Payload of the newest snapshot, or ``None`` when the store is empty."""
        path = self.latest()
        return read_snapshot(path) if path is not None else None
