"""Durable snapshot files for the aggregation service.

A snapshot is the payload of
:meth:`repro.server.window.WindowedAggregator.snapshot` written to disk in
one of two encodings:

* ``"json"`` (default) — the payload as one compact JSON document, exactly
  as before: human-readable, diff-friendly, and integer-exact.
* ``"binary"`` — the same payload through the columnar state container of
  :mod:`repro.protocol.binary` (``pack_state``): the large integer
  accumulator arrays ship as narrowed raw little-endian bytes behind a
  struct header instead of million-element JSON lists, which makes
  checkpointing large aggregators several times smaller and faster.

Because every aggregator keeps exact integer state and integers survive
both encodings exactly, ``restore → absorb more → finalize`` is
**bit-identical** to a server that never crashed (asserted per protocol in
``tests/test_snapshot.py`` and ``tests/test_wire_binary.py``, and
end-to-end, across a ``SIGKILL``, in ``tests/test_server.py``).
:func:`read_snapshot` sniffs the format from the file's first byte (JSON
documents start with ``{``, binary containers with the ``0xB1`` magic), so
either kind of file is a valid restore point regardless of how the server
is configured today.

Files are written atomically (temp file + ``os.replace``) so a crash during
checkpointing can never leave a truncated snapshot as the newest one, and
:class:`SnapshotStore` keeps a bounded history (newest ``keep`` files) with
monotonically increasing sequence numbers.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.protocol.binary import is_binary_payload, pack_state, unpack_state

__all__ = ["SnapshotStore", "SNAPSHOT_FORMATS", "read_snapshot",
           "write_snapshot"]

#: supported on-disk snapshot encodings
SNAPSHOT_FORMATS = ("json", "binary")

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{6})\.(json|bin)$")
_SUFFIXES = {"json": ".json", "binary": ".bin"}


def write_snapshot(path: Union[str, Path], payload: Dict[str, object],
                   format: str = "json") -> Path:
    """Atomically write one snapshot payload to ``path``."""
    if format not in SNAPSHOT_FORMATS:
        raise ValueError(f"snapshot format must be one of {SNAPSHOT_FORMATS}, "
                         f"got {format!r}")
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    if format == "binary":
        tmp.write_bytes(pack_state(payload))
    else:
        tmp.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
    os.replace(tmp, path)
    return path


def read_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Read one snapshot payload written by :func:`write_snapshot`.

    The encoding is sniffed from the first byte, so JSON and binary
    snapshots restore through the same entry point.
    """
    raw = Path(path).read_bytes()
    if is_binary_payload(raw):
        payload = unpack_state(raw)
    else:
        payload = json.loads(raw)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: snapshot payload must be an object")
    return payload


class SnapshotStore:
    """A directory of numbered snapshots with bounded history.

    ``save`` writes ``snapshot-000001.json`` / ``snapshot-000001.bin``
    (depending on the configured ``format``) atomically and deletes
    everything older than the newest ``keep`` files; ``latest`` /
    ``load_latest`` pick the highest sequence number across both suffixes,
    which — thanks to the atomic writes — is always a complete payload.
    """

    def __init__(self, directory: Union[str, Path], keep: int = 3,
                 format: str = "json") -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        if format not in SNAPSHOT_FORMATS:
            raise ValueError(f"snapshot format must be one of "
                             f"{SNAPSHOT_FORMATS}, got {format!r}")
        self.directory = Path(directory)
        self.keep = keep
        self.format = format
        self.directory.mkdir(parents=True, exist_ok=True)

    def _numbered(self) -> List[Path]:
        """Existing snapshot files, oldest first."""
        entries = []
        for path in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(path.name)
            if match:
                entries.append((int(match.group(1)), path))
        return [path for _, path in sorted(entries)]

    def save(self, payload: Dict[str, object]) -> Path:
        """Write the next numbered snapshot and prune old history."""
        existing = self._numbered()
        next_seq = 1
        if existing:
            next_seq = int(_SNAPSHOT_NAME.match(existing[-1].name).group(1)) + 1
        name = f"snapshot-{next_seq:06d}{_SUFFIXES[self.format]}"
        path = write_snapshot(self.directory / name, payload, self.format)
        for stale in self._numbered()[:-self.keep]:
            stale.unlink(missing_ok=True)
        return path

    def latest(self) -> Optional[Path]:
        """Path of the newest snapshot, or ``None`` when the store is empty."""
        existing = self._numbered()
        return existing[-1] if existing else None

    def load_latest(self) -> Optional[Dict[str, object]]:
        """Payload of the newest snapshot, or ``None`` when the store is empty."""
        path = self.latest()
        return read_snapshot(path) if path is not None else None
