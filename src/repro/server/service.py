"""The asyncio report-ingestion server.

One :class:`AggregationServer` owns a single protocol's
:class:`~repro.server.window.WindowedAggregator` and serves any number of
concurrent connections — TCP always, plus an optional same-host
shared-memory endpoint (:mod:`repro.transport`) — speaking the frame
protocol of :mod:`repro.server.framing` (``docs/wire-protocol.md`` §7):

* **Ingestion** — ``reports`` frames are decoded to columnar
  :class:`~repro.protocol.wire.ReportBatch` objects and pushed onto a
  *bounded* queue; a connection that outruns the server suspends inside
  ``queue.put`` and the unread bytes back up the TCP window — natural
  backpressure, no dropped reports.  Binary ``reports`` frames
  (``docs/wire-protocol.md`` §8) arrive from the frame layer as
  already-decoded batches backed by zero-copy views, so the drain absorbs
  their columns without ever materializing a dict payload; ``hello``
  advertises the accepted formats (``wire_formats``) and batches in a
  disabled format are rejected and accounted like any other bad batch.
* **Batched drain** — one drain task pops everything queued (up to
  ``drain_reports`` rows), concatenates per epoch, and calls
  ``absorb_batch`` once per epoch — large-batch ingestion is what keeps the
  numpy fast path hot (see ``benchmarks/bench_server_ingest.py``).
* **Live queries** — ``query`` frames merge the requested epoch window
  (bit-exact, pure) and ``finalize()`` the copy while ingestion continues;
  a client that needs every report it sent reflected first sends ``sync``,
  which completes only once the queue has fully drained.
* **Durable snapshots** — ``snapshot`` frames drain the queue, then write
  the full windowed state to the configured
  :class:`~repro.server.snapshot.SnapshotStore`; a restarted server
  restores from the newest file and finalizes bit-identically.

The event loop is single-threaded: ``absorb_batch`` / ``finalize`` run
atomically between awaits, so no locking is needed and queries can never
observe a half-absorbed batch.
"""

from __future__ import annotations

import asyncio
import base64
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.protocol.binary import pack_state, unpack_state
from repro.protocol.wire import PublicParams, ReportBatch, child_state
from repro.server.framing import (
    WIRE_FORMATS,
    FrameError,
    read_frame,
    write_frame,
)
from repro.server.snapshot import SnapshotStore, read_snapshot
from repro.server.window import WindowedAggregator

__all__ = ["AggregationServer", "ServerStats"]

#: protocol identification string sent in every ``params`` reply
SERVER_ID = "repro-aggregation-server/1"


@dataclass
class ServerStats:
    """Ingestion counters, readable over the wire via ``stats`` frames."""

    batches_received: int = 0
    reports_received: int = 0
    reports_absorbed: int = 0
    reports_rejected: int = 0
    reports_deduped: int = 0
    queries_answered: int = 0
    snapshots_written: int = 0
    connections_total: int = 0
    drain_s: float = 0.0
    last_rejection: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"batches_received": self.batches_received,
                "reports_received": self.reports_received,
                "reports_absorbed": self.reports_absorbed,
                "reports_rejected": self.reports_rejected,
                "reports_deduped": self.reports_deduped,
                "queries_answered": self.queries_answered,
                "snapshots_written": self.snapshots_written,
                "connections_total": self.connections_total,
                "drain_s": round(self.drain_s, 6),
                "last_rejection": self.last_rejection}


@dataclass
class _QueuedBatch:
    epoch: int
    batch: ReportBatch = field(repr=False)


class AggregationServer:
    """A long-lived ingestion endpoint for one protocol's reports.

    Parameters
    ----------
    params:
        Public parameters of any registered wire protocol; published to
        clients in reply to ``hello`` frames.
    window:
        Epoch retention of the underlying :class:`WindowedAggregator`
        (``None`` = unbounded).
    snapshot_dir:
        Directory for durable snapshots; ``None`` disables the ``snapshot``
        frame (it returns an error).
    snapshot_format:
        On-disk snapshot encoding: ``"json"`` (default, human-readable) or
        ``"binary"`` (the columnar state container of
        :mod:`repro.protocol.binary`; restore sniffs the format, so either
        kind of file is a valid restore point).
    wire_formats:
        ``reports`` frame formats this server accepts (any non-empty subset
        of ``("json", "binary")``; default both).  Advertised in the
        ``hello`` reply; batches arriving in a disabled format are dropped
        and accounted.
    queue_batches:
        Bound of the ingestion queue, in batches.  Full queue = ingestion
        backpressure on every sending connection.
    drain_reports:
        Soft cap on the rows one drain iteration concatenates before
        calling ``absorb_batch``.
    """

    def __init__(self, params: PublicParams, *, window: Optional[int] = None,
                 snapshot_dir: Optional[Union[str, Path]] = None,
                 snapshot_format: str = "json",
                 wire_formats: Sequence[str] = WIRE_FORMATS,
                 queue_batches: int = 256,
                 drain_reports: int = 1 << 18) -> None:
        if queue_batches < 1:
            raise ValueError("queue_batches must be >= 1")
        if drain_reports < 1:
            raise ValueError("drain_reports must be >= 1")
        self.wire_formats = tuple(wire_formats)
        if not self.wire_formats or \
                any(fmt not in WIRE_FORMATS for fmt in self.wire_formats):
            raise ValueError(f"wire_formats must be a non-empty subset of "
                             f"{WIRE_FORMATS}, got {wire_formats!r}")
        self.params = params
        self.windowed = WindowedAggregator(params, window)
        self.stats = ServerStats()
        self.store = (SnapshotStore(snapshot_dir, format=snapshot_format)
                      if snapshot_dir is not None else None)
        self._queue_batches = queue_batches
        self._drain_reports = drain_reports
        self._queue: Optional[asyncio.Queue] = None
        #: the bound TCP accept endpoint (a transport Listener); always
        #: present once started — its (host, port) is the readiness contract
        self._listener = None
        #: the optional same-host shared-memory accept endpoint
        self._shm_listener = None
        self._drain_task: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._stopping = asyncio.Event()
        #: claimed synchronously at the top of start(), before its first
        #: await, so concurrent start() calls cannot both pass the guard
        self._started = False
        #: serializes snapshot captures with their executor-side disk write
        self._snapshot_lock = asyncio.Lock()
        #: highest delivery sequence number accepted (spec §7.1); in-memory
        #: only — a restarted shard must re-absorb its journal replay onto
        #: the restored snapshot, so forgetting the watermark is correct
        self._max_seq: Optional[int] = None
        #: set once this shard answered a ``handoff`` frame: its state was
        #: (or is being) handed off wholesale, so absorbing any further
        #: report would lose it — reports are rejected from then on
        self._draining = False
        #: handoff ids already absorbed via ``absorb_state`` (spec §7.4);
        #: persisted inside snapshots so a drain push retried across a
        #: crash-restore can never double-count the handed-off state
        self._handoffs: set = set()

    # ----- lifecycle ----------------------------------------------------------------

    @classmethod
    def restore(cls, snapshot_path: Union[str, Path],
                **kwargs) -> "AggregationServer":
        """Build a server whose state is the given windowed snapshot file."""
        payload = read_snapshot(snapshot_path)
        windowed = WindowedAggregator.from_snapshot(payload)
        server = cls(windowed.params, window=windowed.window, **kwargs)
        server.windowed = windowed
        server.stats.reports_absorbed = windowed.num_reports
        server._handoffs = {int(h) for h in payload.get("handoffs", [])}
        return server

    async def start(self, host: str = "127.0.0.1", port: int = 0, *,
                    transport: str = "tcp", shm_name: Optional[str] = None,
                    acceptors: int = 1) -> Tuple[str, int]:
        """Bind and start serving; returns the actual TCP ``(host, port)``.

        The TCP endpoint is always bound — its ``(host, port)`` readiness
        line is what the supervisor and the blocking clients rely on, and
        ``acceptors > 1`` spreads it over that many SO_REUSEPORT acceptor
        sockets.  ``transport="shm"`` *additionally* binds a same-host
        shared-memory accept endpoint named ``shm_name``
        (``docs/transport.md``); both endpoints feed the same dispatcher,
        queue, and aggregator, so which transport a frame arrived over is
        invisible to the aggregate.
        """
        # Imported lazily: repro.transport pulls repro.server.framing, so a
        # module-level import here would cycle through the package __init__.
        from repro import transport as transports

        if self._started:
            raise RuntimeError("server already started")
        transports.get_backend(transport)  # raises on an unknown name
        if transport == "shm" and not shm_name:
            raise ValueError("transport='shm' needs a shm_name to bind")
        self._started = True
        self._queue = asyncio.Queue(maxsize=self._queue_batches)
        self._drain_task = asyncio.create_task(self._drain_loop())
        self._listener = await transports.serve(
            self._handle_connection,
            transports.format_address("tcp", f"{host}:{port}"),
            acceptors=acceptors)
        if transport == "shm":
            self._shm_listener = await transports.serve(
                self._handle_connection,
                transports.format_address("shm", str(shm_name)))
        return self._listener.host, self._listener.port

    async def serve_until_stopped(self) -> None:
        """Serve until a ``shutdown`` frame arrives or :meth:`stop` is called."""
        if self._listener is None:
            raise RuntimeError("call start() first")
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Drain, stop accepting, and cancel the drain task."""
        self._stopping.set()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._listener is None:
            return
        listener, self._listener = self._listener, None
        shm_listener, self._shm_listener = self._shm_listener, None
        listener.close()
        if shm_listener is not None:
            shm_listener.close()
        # Close lingering client connections before wait_closed(): since
        # Python 3.12.1 it waits for every connection *handler* to finish,
        # so an idle client parked in read_frame would otherwise hang the
        # shutdown indefinitely.
        for writer in list(self._connections):
            writer.close()
        await listener.wait_closed()
        if shm_listener is not None:
            await shm_listener.wait_closed()
        await self._queue.join()
        self._drain_task.cancel()
        try:
            await self._drain_task
        except asyncio.CancelledError:
            pass

    # ----- ingestion ----------------------------------------------------------------

    async def _drain_loop(self) -> None:
        """Single consumer: pop queued batches, concatenate, absorb."""
        loop = asyncio.get_running_loop()
        while True:
            first: _QueuedBatch = await self._queue.get()
            pending = [first]
            total = len(first.batch)
            while total < self._drain_reports:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                pending.append(item)
                total += len(item.batch)
            start = loop.time()
            try:
                by_epoch: Dict[int, List[_QueuedBatch]] = {}
                for item in pending:
                    by_epoch.setdefault(item.epoch, []).append(item)
                for epoch, items in by_epoch.items():
                    # A bad batch (stale epoch, or a well-tagged frame whose
                    # columns don't fit the protocol) is dropped and
                    # recorded, never raised: a dead drain task would
                    # deadlock every later `sync`/`snapshot`/`shutdown`.
                    size = sum(len(item.batch) for item in items)
                    try:
                        batch = (items[0].batch if len(items) == 1 else
                                 ReportBatch.concat([i.batch for i in items],
                                                    consume=True))
                        self.windowed.absorb_batch(batch, epoch, atomic=True)
                    except Exception as exc:  # noqa: BLE001 - accounted
                        self.stats.reports_rejected += size
                        self.stats.last_rejection = str(exc)
                    else:
                        self.stats.reports_absorbed += size
            finally:
                self.stats.drain_s += loop.time() - start
                for _ in pending:
                    self._queue.task_done()

    # ----- connection handling ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats.connections_total += 1
        self._connections.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except FrameError as exc:
                    await write_frame(writer, {"type": "error",
                                               "error": str(exc)})
                    break
                if frame is None:
                    break
                if not await self._dispatch(frame, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _answer_query(self, writer: asyncio.StreamWriter,
                            items: List[int], epochs: List[int],
                            merged) -> bool:
        """Finalize a merged window and reply with an ``estimates`` frame."""
        if merged.num_reports == 0:
            # No data (fresh server or empty window): every count
            # estimate is exactly zero; finalizing would raise.
            estimates = [0.0] * len(items)
        else:
            estimator = merged.finalize()
            estimates = [float(a) for a in estimator.estimate_many(items)]
        self.stats.queries_answered += 1
        await write_frame(writer, {
            "type": "estimates",
            "items": items,
            "estimates": estimates,
            "num_reports": merged.num_reports,
            "epochs": epochs})
        return True

    async def _dispatch(self, frame: Dict[str, object],
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one frame; returns ``False`` to close the connection."""
        kind = frame.get("type")
        if kind == "reports":
            # Fire-and-forget: a bad batch must be *accounted*, never
            # answered — an error frame here would occupy the next request's
            # reply slot and desynchronize the connection forever.
            self.stats.batches_received += 1
            try:
                payload = frame["batch"]
                if isinstance(payload, ReportBatch):
                    # Binary frame: the frame layer already decoded the
                    # columns as zero-copy views — no dict, no re-parse.
                    wire_format, batch = "binary", payload
                else:
                    wire_format = "json"
                    batch = ReportBatch.from_dict(dict(payload))
                if wire_format not in self.wire_formats:
                    self.stats.reports_rejected += len(batch)
                    raise ValueError(
                        f"{wire_format!r} reports frames are disabled on "
                        f"this server (accepted: {self.wire_formats})")
                if batch.protocol != self.params.protocol:
                    self.stats.reports_rejected += len(batch)
                    raise ValueError(
                        f"cannot ingest {batch.protocol!r} reports into a "
                        f"{self.params.protocol!r} server")
                if self._draining:
                    # The state already left (or is leaving) wholesale: a
                    # report absorbed now would miss the handoff and vanish.
                    self.stats.reports_rejected += len(batch)
                    raise ValueError("this shard is draining: its state "
                                     "was handed off")
            except Exception as exc:  # noqa: BLE001 - accounted in stats
                self.stats.last_rejection = str(exc)
                return True
            seq = frame.get("seq")
            if seq is not None:
                # Exact redelivery detection (spec §7.1): the router stamps
                # a strictly increasing per-link counter, so on journal
                # replay a not-larger number means this exact batch was
                # already absorbed — drop it, account it, stay silent.
                seq = int(seq)
                if self._max_seq is not None and seq <= self._max_seq:
                    self.stats.reports_deduped += len(batch)
                    return True
                self._max_seq = seq
            self.stats.reports_received += len(batch)
            if len(batch):
                await self._queue.put(
                    _QueuedBatch(int(frame.get("epoch", 0)), batch))
            return True
        try:
            if kind == "hello":
                await write_frame(writer, {
                    "type": "params",
                    "server": SERVER_ID,
                    "params": self.params.to_dict(),
                    "window": self.windowed.window,
                    "wire_formats": list(self.wire_formats)})
                return True
            if kind == "sync":
                await self._queue.join()
                await write_frame(writer, {
                    "type": "synced",
                    "num_reports": self.windowed.num_reports})
                return True
            if kind == "query":
                items = [int(x) for x in frame.get("items", [])]
                window = frame.get("window")
                window = int(window) if window is not None else None
                epochs = self.windowed.select_epochs(window)
                merged = self.windowed.merged(window)
                return await self._answer_query(writer, items, epochs, merged)
            if kind == "state":
                # State pull (the cluster router's query path): drain, merge
                # the selected epochs, and ship the exact integer state as
                # one packed binary blob.  The puller merges blobs from K
                # shards and finalizes — bit-identical to one server that
                # ingested everything, because merge is an integer sum.
                await self._queue.join()
                window = frame.get("window")
                window = int(window) if window is not None else None
                min_epoch = frame.get("min_epoch")
                min_epoch = int(min_epoch) if min_epoch is not None else None
                epochs = self.windowed.select_epochs(window, min_epoch)
                merged = self.windowed.merged(window, min_epoch)
                blob = pack_state(child_state(merged))
                self.stats.queries_answered += 1
                await write_frame(writer, {
                    "type": "state",
                    "protocol": self.params.protocol,
                    "epochs": epochs,
                    "num_reports": merged.num_reports,
                    "state": base64.b64encode(blob).decode("ascii")})
                return True
            if kind == "handoff":
                # Drain pull (spec §7.4): stop absorbing, then ship the
                # full per-epoch exact state as one packed blob.  Draining
                # is set *before* the queue join so stragglers are rejected
                # and the reply is idempotent — a retried pull (the router
                # crashed mid-drain) reads the same frozen state.
                hid = int(frame.get("handoff", 0))
                # repro-lint: ignore[RPL302] the write is idempotent (True
                # stays True across retried pulls), so the interleaving is
                # harmless by design, not by timing
                self._draining = True
                await self._queue.join()
                blob = pack_state(self.windowed.snapshot())
                self.stats.queries_answered += 1
                await write_frame(writer, {
                    "type": "handoff_state",
                    "handoff": hid,
                    "protocol": self.params.protocol,
                    "num_reports": self.windowed.num_reports,
                    "state": base64.b64encode(blob).decode("ascii")})
                return True
            if kind == "absorb_state":
                # Drain push: fold a drained shard's windowed snapshot into
                # this one.  Deduped on the handoff id — the set survives
                # snapshots/restores — so a push retried across any crash
                # absorbs exactly once.
                hid = int(frame.get("handoff", 0))
                if hid in self._handoffs:
                    await write_frame(writer, {
                        "type": "absorbed",
                        "handoff": hid,
                        "absorbed": 0,
                        "deduped": True,
                        "num_reports": self.windowed.num_reports})
                    return True
                payload = unpack_state(base64.b64decode(str(frame["state"])))
                absorbed = self.windowed.merge_snapshot(payload)
                self._handoffs.add(hid)
                self.stats.reports_absorbed += absorbed
                await write_frame(writer, {
                    "type": "absorbed",
                    "handoff": hid,
                    "absorbed": absorbed,
                    "deduped": False,
                    "num_reports": self.windowed.num_reports})
                return True
            if kind == "snapshot":
                if self.store is None:
                    raise ValueError("server was started without a snapshot "
                                     "directory")
                await self._queue.join()
                async with self._snapshot_lock:
                    # capture synchronously (atomic w.r.t. the drain loop),
                    # then push the disk write off the event loop
                    payload = self.windowed.snapshot()
                    if self._handoffs:
                        payload["handoffs"] = sorted(self._handoffs)
                    path = await asyncio.get_running_loop().run_in_executor(
                        None, self.store.save, payload)
                self.stats.snapshots_written += 1
                await write_frame(writer, {
                    "type": "snapshot_written",
                    "path": str(path),
                    "num_reports": self.windowed.num_reports})
                return True
            if kind == "health":
                # Liveness probe: answered from in-memory counters without
                # touching the queue — must stay responsive while a `sync`
                # would block behind a deep backlog.
                await write_frame(writer, {
                    "type": "health",
                    "server": SERVER_ID,
                    "status": "ok",
                    "protocol": self.params.protocol,
                    "queue_depth": self._queue.qsize(),
                    "epochs": self.windowed.epochs,
                    "num_reports": self.windowed.num_reports,
                    "state_size": self.windowed.state_size,
                    "max_seq": self._max_seq,
                    "draining": self._draining})
                return True
            if kind == "stats":
                payload = self.stats.to_dict()
                payload.update({
                    "type": "stats",
                    "protocol": self.params.protocol,
                    "epochs": self.windowed.epochs,
                    "window": self.windowed.window,
                    "state_size": self.windowed.state_size,
                    "queue_depth": self._queue.qsize()})
                await write_frame(writer, payload)
                return True
            if kind == "shutdown":
                await self._queue.join()
                await write_frame(writer, {
                    "type": "bye",
                    "num_reports": self.windowed.num_reports})
                self._stopping.set()
                return False
            raise ValueError(f"unknown frame type {kind!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            await write_frame(writer, {"type": "error", "error": str(exc)})
            return True
