"""Downstream applications built on the heavy-hitters / frequency-oracle API.

The paper's introduction motivates LDP heavy hitters as a subroutine "for
solving many other problems, such as median estimation, convex optimization,
and clustering" [31, 26].  This subpackage implements the canonical such
application end to end:

* :class:`~repro.applications.quantiles.HierarchicalRangeOracle` — a locally
  private hierarchical (dyadic) histogram supporting range counts over an
  ordered domain, and
* :class:`~repro.applications.quantiles.PrivateQuantileEstimator` — median and
  arbitrary quantile estimation on top of it,

both assembled purely from the library's frequency oracles and accounting
utilities, exactly the way a downstream user would build them.
"""

from repro.applications.quantiles import (
    HierarchicalRangeOracle,
    PrivateQuantileEstimator,
)

__all__ = [
    "HierarchicalRangeOracle",
    "PrivateQuantileEstimator",
]
