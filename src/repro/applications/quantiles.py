"""Locally private range counts and quantiles via hierarchical histograms.

Construction (the standard dyadic-tree reduction, assembled from this
library's primitives):

* the ordered domain ``[0, domain_size)`` is padded to a power of two and
  organised into a dyadic tree of ``L = log2(domain)`` levels; level ``l`` has
  ``2^l`` nodes, each covering a contiguous interval;
* each user is assigned to one level uniformly at random and reports the
  identifier of her value's ancestor node at that level through a
  small-domain frequency oracle (Hadamard response) with the full budget ε —
  one report per user, so the whole protocol is ε-LDP;
* the count of any interval decomposes into at most ``2·L`` dyadic nodes, so
  the server answers arbitrary range queries by summing node estimates
  (rescaled by the number of levels, since each level only saw ``n/L`` users);
* quantiles (and the median) are found by binary search over prefix counts.

Error: each node estimate has standard deviation ``O(sqrt(n L)/ε)``, so a
range count touches ``O(log domain)`` nodes and a quantile query returns a
value whose rank is within ``O~(sqrt(n) log^{1.5}(domain)/ε)`` of the target —
the standard guarantee for this reduction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.frequency.explicit import ExplicitHistogramOracle
from repro.utils.bits import next_power_of_two
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int, check_probability


class HierarchicalRangeOracle:
    """ε-LDP oracle for range counts over an ordered integer domain.

    Parameters
    ----------
    domain_size:
        Values are integers in ``[0, domain_size)``; the tree is built over the
        domain padded to the next power of two.
    epsilon:
        Per-user privacy budget (each user sends a single report).
    max_levels:
        Cap on the number of tree levels used (deeper levels resolve finer
        ranges but split the users thinner).  ``None`` uses the full depth.
    randomizer:
        Inner randomizer of the per-level oracles ("hadamard", "oue", "krr").
    """

    def __init__(self, domain_size: int, epsilon: float,
                 max_levels: Optional[int] = None,
                 randomizer: str = "hadamard") -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)
        self.padded_size = next_power_of_two(domain_size)
        full_depth = max(int(math.log2(self.padded_size)), 1)
        if max_levels is not None:
            check_positive_int(max_levels, "max_levels")
            full_depth = min(full_depth, max_levels)
        self.num_levels = full_depth
        self.randomizer = randomizer
        self._num_users = 0
        self._level_oracles: List[ExplicitHistogramOracle] = []
        self._level_sizes: List[int] = []

    # ----- collection ---------------------------------------------------------------

    @property
    def num_users(self) -> int:
        return self._num_users

    def _level_width(self, level: int) -> int:
        """Width of each node interval at the given level (level 0 = leaves)."""
        return self.padded_size >> (self.num_levels - 1 - level) if self.num_levels > 1 else self.padded_size

    def _nodes_at_level(self, level: int) -> int:
        return self.padded_size // self._level_width(level)

    def collect(self, values: Sequence[int], rng: RandomState = None) -> None:
        """Simulate the protocol: randomize and aggregate every user's report."""
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            raise ValueError("the database must contain at least one user")
        if values.min() < 0 or values.max() >= self.domain_size:
            raise ValueError("values outside the declared domain")
        self._num_users = int(values.size)

        assignment = gen.integers(0, self.num_levels, size=values.size)
        self._level_oracles = []
        self._level_sizes = []
        for level in range(self.num_levels):
            members = values[assignment == level]
            width = self._level_width(level)
            nodes = self._nodes_at_level(level)
            oracle = ExplicitHistogramOracle(nodes, self.epsilon,
                                             randomizer=self.randomizer)
            oracle.collect(members // width, gen)
            self._level_oracles.append(oracle)
            self._level_sizes.append(int(members.size))

    def _require_collected(self) -> None:
        if not self._level_oracles:
            raise RuntimeError("collect() must be called before querying")

    # ----- range queries --------------------------------------------------------------

    def _node_estimate(self, level: int, node: int) -> float:
        """Estimated number of users (in the whole population) inside a node."""
        oracle = self._level_oracles[level]
        size = max(self._level_sizes[level], 1)
        return oracle.estimate(node) * self._num_users / size

    def _dyadic_cover(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Greedy dyadic decomposition of [lo, hi) into (level, node) pairs."""
        cover: List[Tuple[int, int]] = []
        position = lo
        while position < hi:
            # Largest usable level: node must start at `position` and fit in [lo, hi).
            chosen = None
            for level in range(self.num_levels):
                width = self._level_width(level)
                if position % width == 0 and position + width <= hi:
                    chosen = (level, position // width)
                    chosen_width = width
            if chosen is None:
                # Finest level always has width >= 1 node covering `position`...
                # but if even the finest node overshoots hi we must still use it
                # partially; we approximate by including it (the overshoot is at
                # most one finest-level width).
                width = self._level_width(0)
                chosen = (0, position // width)
                chosen_width = width
            cover.append(chosen)
            position += chosen_width
        return cover

    @property
    def finest_resolution(self) -> int:
        """Width of the finest tree node: ranges are resolved to this granularity."""
        return self._level_width(0)

    def range_count(self, lo: int, hi: int) -> float:
        """Estimated number of users with value in ``[lo, hi)``.

        ``lo`` and ``hi`` are clamped to the domain; the query is answered at
        the tree's finest resolution (``finest_resolution`` values per leaf).
        """
        self._require_collected()
        lo = max(int(lo), 0)
        hi = min(int(hi), self.padded_size)
        if hi <= lo:
            return 0.0
        return float(sum(self._node_estimate(level, node)
                         for level, node in self._dyadic_cover(lo, hi)))

    def prefix_count(self, hi: int) -> float:
        """Estimated number of users with value < ``hi``."""
        return self.range_count(0, hi)

    def histogram_at_resolution(self, level: int = 0) -> np.ndarray:
        """Estimated counts of every node at one level (coarse histogram view)."""
        self._require_collected()
        if not 0 <= level < self.num_levels:
            raise ValueError("level out of range")
        nodes = self._nodes_at_level(level)
        return np.array([self._node_estimate(level, node) for node in range(nodes)])

    def expected_range_error(self, beta: float = 0.05) -> float:
        """High-probability error bound for a single range query.

        A range decomposes into at most 2·L nodes; each node estimate has
        variance ``(n/L)·Var_user · (n / (n/L))² = n·L·Var_user`` after
        rescaling, so the bound is ``sqrt(2 · 2L · n L Var_user · ln(2/β))``.
        """
        check_probability(beta, "beta", allow_zero=False, allow_one=False)
        self._require_collected()
        var_user = self._level_oracles[0].estimator_variance_per_user
        levels = self.num_levels
        per_node_variance = self._num_users * levels * var_user
        return math.sqrt(2.0 * 2 * levels * per_node_variance * math.log(2.0 / beta))


class PrivateQuantileEstimator:
    """Median / quantile estimation on top of :class:`HierarchicalRangeOracle`.

    Example
    -------
    >>> import numpy as np
    >>> values = np.clip(np.random.default_rng(0).normal(600, 80, 40_000), 0, 1023)
    >>> estimator = PrivateQuantileEstimator(domain_size=1024, epsilon=2.0)
    >>> estimator.collect(values.astype(int), rng=1)
    >>> 500 < estimator.median() < 700
    True
    """

    def __init__(self, domain_size: int, epsilon: float,
                 max_levels: Optional[int] = None,
                 randomizer: str = "hadamard") -> None:
        self.oracle = HierarchicalRangeOracle(domain_size, epsilon,
                                              max_levels=max_levels,
                                              randomizer=randomizer)

    @property
    def epsilon(self) -> float:
        return self.oracle.epsilon

    @property
    def domain_size(self) -> int:
        return self.oracle.domain_size

    def collect(self, values: Sequence[int], rng: RandomState = None) -> None:
        """Run the underlying range oracle on the users' values."""
        self.oracle.collect(values, rng)

    def quantile(self, q: float) -> int:
        """Smallest value v whose estimated rank reaches ``q * n``.

        Binary search over prefix counts; the result is resolved to the tree's
        finest node width.
        """
        check_probability(q, "q", allow_zero=False, allow_one=False)
        target = q * self.oracle.num_users
        lo, hi = 0, self.oracle.padded_size
        step = self.oracle.finest_resolution
        while hi - lo > step:
            mid = (lo + hi) // (2 * step) * step
            if mid <= lo:
                mid = lo + step
            if self.oracle.prefix_count(mid) < target:
                lo = mid
            else:
                hi = mid
        return min(hi, self.domain_size - 1)

    def median(self) -> int:
        """The estimated median value."""
        return self.quantile(0.5)

    def quantiles(self, qs: Sequence[float]) -> Dict[float, int]:
        """Several quantiles at once (monotonicity is enforced on the output)."""
        results: Dict[float, int] = {}
        previous = 0
        for q in sorted(float(q) for q in qs):
            value = max(self.quantile(q), previous)
            results[q] = value
            previous = value
        return results

    def rank_error(self, values: Sequence[int], q: float) -> float:
        """Rank error (in users) of the estimated q-quantile against the data."""
        values = np.asarray(values)
        estimate = self.quantile(q)
        realised_rank = float(np.count_nonzero(values <= estimate))
        return abs(realised_rank - q * values.size)
