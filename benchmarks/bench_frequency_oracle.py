"""Benchmark E4: Hashtogram frequency-oracle error versus Theorems 3.7 / 3.8.

Measured worst-case and RMS error of the general Hashtogram oracle (and the
small-domain explicit oracle where applicable) across domain sizes, next to
the paper's per-query error formulas.  The expected shape: error essentially
flat in |X|, well inside the theoretical envelope, with O~(sqrt(n)) server
memory for the hashing oracle.
"""

from conftest import report, run_once

from repro.experiments import FrequencyOracleConfig, run_frequency_oracle


CONFIG = FrequencyOracleConfig(num_users=30_000, epsilon=1.0, beta=0.05,
                               domain_sizes=[1 << 8, 1 << 12, 1 << 16, 1 << 20],
                               num_queries=200, rng=0)


def test_frequency_oracle(benchmark):
    rows = run_once(benchmark, run_frequency_oracle, CONFIG)
    report(benchmark, "E4: frequency-oracle error vs Theorem 3.7/3.8 bounds", rows)
    for row in rows:
        bound = row.get("bound_thm37", row.get("bound_thm38"))
        assert row["max_error"] < 4 * bound
    hashtogram_rows = [r for r in rows if r["oracle"] == "hashtogram"]
    # Server memory of the hashing oracle does not grow with the domain.
    assert (hashtogram_rows[-1]["server_memory_items"]
            == hashtogram_rows[0]["server_memory_items"])
