"""Benchmark W3: sustained wire ingest of the streaming aggregation server.

Measures what the service layer adds on top of raw ``absorb_batch``: a real
TCP round through length-prefixed frames, the bounded ingestion queue, and
the batched drain — in **both** ``reports`` wire formats:

* ``json`` — the legacy b64-columnar JSON frames (one ``json.loads`` plus a
  base64 pass per batch on the server);
* ``binary`` — the zero-copy columnar frames of ``docs/wire-protocol.md``
  §8 (raw narrowed little-endian columns behind a struct header, decoded
  into read-only ``np.frombuffer`` views).

The protocol under test is the paper's workhorse (Hashtogram); the measured
quantity is **sustained ingest** — reports/s from the first byte sent to
the server confirming, via a ``sync`` barrier, that every report has been
absorbed into exact integer state.  One row per (protocol, wire format)
records the wire bytes and the throughput, so ``BENCH_server.json`` shows
the binary/json ratio directly; CI fails if the binary encoding is not at
least 3x smaller on the wire than the b64-JSON frames (see ``--check`` and
the assertions in ``main``), or — against the committed
``BENCH_baseline.json`` reference (``--check ... --baseline ...``) — if
ingest throughput drops more than 40% below baseline (engine numbers are
gated the same way via ``--engine``).

Client-side encoding and frame serialization are done *before* the clock
starts (a deployment's clients encode on their own devices); the timed path
is socket write → frame read → decode → ``absorb_batch`` → drain
accounting, i.e. exactly the server's steady-state ingest loop.

Run as a script to (re)generate ``BENCH_server.json``::

    PYTHONPATH=src python benchmarks/bench_server_ingest.py

or under pytest-benchmark (CI smoke)::

    PYTHONPATH=src python -m pytest benchmarks/bench_server_ingest.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

NUM_USERS = 1_000_000
CHUNK_SIZE = 1 << 16
SEED = 0
WIRE_FORMATS = ("json", "binary")
#: CI gate: binary frames must be at least this many times smaller on the
#: wire than the b64-JSON frames for the same batches
MIN_WIRE_SHRINK = 3.0


def run_server_ingest_bench(protocols: Sequence[str] = ("hashtogram",),
                            num_users: int = NUM_USERS,
                            domain_size: int = 1 << 16,
                            epsilon: float = 1.0, seed: int = SEED,
                            chunk_size: int = CHUNK_SIZE,
                            repeats: int = 3,
                            verify_queries: int = 64,
                            wire_formats: Sequence[str] = WIRE_FORMATS
                            ) -> Dict[str, object]:
    """Measure sustained wire ingest per (protocol, wire format).

    Each repeat spawns a fresh ``repro.cli serve`` subprocess, blasts the
    pre-encoded frames down one connection, and stops the clock when the
    ``sync`` barrier confirms full absorption.  ``elapsed_s`` is the best of
    ``repeats``.  Every repeat also verifies the served estimates against
    the offline engine, bit for bit — throughput that corrupts the aggregate
    would be meaningless.
    """
    from repro.cli import _spawn_server
    from repro.engine import encode_stream, run_simulation
    from repro.engine.bench import build_bench_params
    from repro.server import AggregationClient, encode_reports_frame
    from repro.utils.rng import as_generator
    from repro.workloads.distributions import zipf_workload

    results: List[Dict[str, object]] = []
    for protocol in protocols:
        setup_gen = as_generator(seed)
        values = zipf_workload(num_users, domain_size,
                               support=min(2_000, domain_size), rng=setup_gen)
        params = build_bench_params(protocol, domain_size, epsilon, num_users,
                                    rng=setup_gen)
        plan_seed = int(setup_gen.integers(0, 2**63 - 1))

        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(plan_seed),
                                     chunk_size=chunk_size))
        queries = [int(x) for x in np.random.default_rng(0).integers(
            0, domain_size, size=verify_queries)]
        expected = run_simulation(
            params, values, rng=np.random.default_rng(plan_seed),
            chunk_size=chunk_size).finalize().estimate_many(queries)

        for wire_format in wire_formats:
            frames = b"".join(
                encode_reports_frame(batch, 0, wire_format)
                for batch in batches)
            best: Optional[Dict[str, float]] = None
            identical = True
            for _ in range(max(1, repeats)):
                proc, host, port = _spawn_server(params)
                try:
                    with AggregationClient(host, port) as client:
                        start = time.perf_counter()
                        client.send_raw(frames)
                        absorbed = client.sync()
                        elapsed = time.perf_counter() - start
                        served = client.query(queries)
                        stats = client.stats()
                        client.shutdown()
                    proc.wait(timeout=10)
                finally:
                    if proc.poll() is None:
                        proc.terminate()
                        proc.wait(timeout=10)
                    proc.stdout.close()
                if absorbed != num_users:
                    raise RuntimeError(f"server absorbed {absorbed} of "
                                       f"{num_users} reports")
                identical = identical and bool(np.array_equal(served, expected))
                run = {"elapsed_s": elapsed, "drain_s": float(stats["drain_s"])}
                if best is None or elapsed < best["elapsed_s"]:
                    best = run
            results.append({
                "protocol": protocol,
                "wire_format": wire_format,
                "num_users": int(num_users),
                "num_frames": len(batches),
                "wire_mb": round(len(frames) / 1e6, 2),
                "ingest_s": round(best["elapsed_s"], 4),
                "reports_per_s": int(num_users / max(best["elapsed_s"], 1e-9)),
                "drain_s": round(best["drain_s"], 4),
                "absorb_reports_per_s": int(num_users / max(best["drain_s"], 1e-9)),
                "identical_to_offline_engine": identical,
            })
    return {
        "benchmark": "server_ingest",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "num_users": int(num_users),
            "domain_size": int(domain_size),
            "epsilon": float(epsilon),
            "seed": int(seed),
            "chunk_size": int(chunk_size),
            "repeats": int(max(1, repeats)),
            "protocols": list(protocols),
            "wire_formats": list(wire_formats),
        },
        "results": results,
    }


def _report_rows(payload: Dict[str, object]) -> List[Dict[str, object]]:
    return list(payload["results"])


#: CI regression gate: measured throughput may drop at most this fraction
#: below the committed BENCH_baseline.json figure before the gate fails
MAX_THROUGHPUT_DROP = 0.40


def check_throughput_regression(payload: Dict[str, object],
                                baseline: Dict[str, object],
                                max_drop: float = None) -> List[str]:
    """CI gate: binary-format ingest must stay within ``max_drop`` of baseline.

    ``baseline`` is the committed ``BENCH_baseline.json``: per protocol, the
    reference ``reports_per_s`` for each wire format under ``"server"``.
    Only throughput *drops* fail — faster hosts pass trivially; the gate
    exists so a change that tanks the zero-copy ingest path (the 4.3× win
    of the binary format) cannot land silently.  Returns the violations
    (empty = ok).
    """
    if max_drop is None:
        max_drop = float(baseline.get("max_drop", MAX_THROUGHPUT_DROP))
    measured: Dict[str, Dict[str, float]] = {}
    for row in payload["results"]:
        measured.setdefault(str(row["protocol"]), {})[
            str(row.get("wire_format", "json"))] = float(row["reports_per_s"])
    failures = []
    for protocol, formats in dict(baseline.get("server", {})).items():
        for wire_format, reference in dict(formats).items():
            floor = (1.0 - max_drop) * float(reference)
            got = measured.get(protocol, {}).get(wire_format)
            if got is None:
                failures.append(f"{protocol}/{wire_format}: no measured row "
                                f"(baseline {reference:,.0f} reports/s)")
            elif got < floor:
                failures.append(
                    f"{protocol}/{wire_format}: ingest throughput regressed "
                    f"to {got:,.0f} reports/s (< {floor:,.0f}; baseline "
                    f"{float(reference):,.0f}, max drop {max_drop:.0%})")
    return failures


def check_engine_regression(payload: Dict[str, object],
                            baseline: Dict[str, object],
                            max_drop: float = None) -> List[str]:
    """Same gate for ``BENCH_engine.json``: 1-worker engine throughput."""
    if max_drop is None:
        max_drop = float(baseline.get("max_drop", MAX_THROUGHPUT_DROP))
    measured: Dict[str, float] = {}
    for row in payload["results"]:
        if int(row.get("workers", 0)) == 1:
            measured[str(row["protocol"])] = float(row["reports_per_s"])
    failures = []
    for protocol, reference in dict(baseline.get("engine", {})).items():
        floor = (1.0 - max_drop) * float(reference)
        got = measured.get(protocol)
        if got is None:
            failures.append(f"engine/{protocol}: no measured 1-worker row "
                            f"(baseline {float(reference):,.0f} reports/s)")
        elif got < floor:
            failures.append(
                f"engine/{protocol}: 1-worker throughput regressed to "
                f"{got:,.0f} reports/s (< {floor:,.0f}; baseline "
                f"{float(reference):,.0f}, max drop {max_drop:.0%})")
    return failures


def check_transport_regression(payload: Dict[str, object],
                               baseline: Dict[str, object],
                               max_drop: float = None) -> List[str]:
    """Gate for ``BENCH_transport.json`` (the transport-matrix artifact).

    Two checks against the baseline's ``"transport"`` section: per-backend
    wire-throughput floors (``reports_per_s``, with the usual ``max_drop``
    headroom), and the headline structural claim — the same-host shm ring
    must move frames at least ``min_shm_speedup_vs_tcp`` times faster than
    TCP loopback.  The ratio is same-run shm/tcp, so host-wide noise that
    slows both backends together cannot fail it.  Returns the violations
    (empty = ok).
    """
    if max_drop is None:
        max_drop = float(baseline.get("max_drop", MAX_THROUGHPUT_DROP))
    spec = dict(baseline.get("transport", {}))
    if not spec:
        return []
    measured: Dict[str, float] = {
        str(row["transport"]): float(row["reports_per_s"])
        for row in payload["results"]}
    failures = []
    for transport, reference in dict(spec.get("reports_per_s", {})).items():
        floor = (1.0 - max_drop) * float(reference)
        got = measured.get(transport)
        if got is None:
            failures.append(f"transport/{transport}: no measured row "
                            f"(baseline {float(reference):,.0f} reports/s)")
        elif got < floor:
            failures.append(
                f"transport/{transport}: wire throughput regressed to "
                f"{got:,.0f} reports/s (< {floor:,.0f}; baseline "
                f"{float(reference):,.0f}, max drop {max_drop:.0%})")
    min_speedup = spec.get("min_shm_speedup_vs_tcp")
    if min_speedup is not None:
        if "tcp" in measured and "shm" in measured:
            speedup = measured["shm"] / max(measured["tcp"], 1e-9)
            if speedup < float(min_speedup):
                failures.append(
                    f"transport/shm: only {speedup:.2f}x faster than TCP "
                    f"loopback (required >= {float(min_speedup)}x)")
        else:
            failures.append("transport: speedup gate needs both a tcp and "
                            f"an shm row (have {sorted(measured)})")
    for row in payload["results"]:
        if not row.get("identical_to_offline_engine", False):
            failures.append(f"transport/{row['transport']}: served estimates "
                            f"diverged from the offline engine")
    return failures


def check_wire_shrink(payload: Dict[str, object],
                      min_shrink: float = MIN_WIRE_SHRINK) -> List[str]:
    """CI gate: per protocol, binary wire bytes must be ≥ ``min_shrink``×
    smaller than the b64-JSON frames.  Returns the violations (empty = ok)."""
    by_protocol: Dict[str, Dict[str, float]] = {}
    for row in payload["results"]:
        by_protocol.setdefault(str(row["protocol"]), {})[
            str(row.get("wire_format", "json"))] = float(row["wire_mb"])
    failures = []
    for protocol, sizes in by_protocol.items():
        if "json" not in sizes or "binary" not in sizes:
            failures.append(f"{protocol}: missing a wire format "
                            f"(have {sorted(sizes)})")
            continue
        shrink = sizes["json"] / max(sizes["binary"], 1e-9)
        if shrink < min_shrink:
            failures.append(
                f"{protocol}: binary frames are only {shrink:.2f}x smaller "
                f"than b64-JSON ({sizes['binary']} MB vs {sizes['json']} MB; "
                f"required >= {min_shrink}x)")
    return failures


def test_server_ingest(benchmark):
    """CI smoke: both formats must stay bit-identical, make progress, and
    the binary frames must hold the ≥3× wire shrink."""
    from conftest import report, run_once

    payload = run_once(benchmark, run_server_ingest_bench,
                       num_users=200_000, repeats=1)
    rows = _report_rows(payload)
    report(benchmark, "W3: server wire-ingest throughput", rows)
    for row in rows:
        assert row["identical_to_offline_engine"], row
        assert row["reports_per_s"] > 0
    assert not check_wire_shrink(payload)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=NUM_USERS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--protocols", default="hashtogram")
    parser.add_argument("--output", default="BENCH_server.json")
    parser.add_argument("--check", metavar="BENCH_JSON", default=None,
                        help="do not run the benchmark; verify an existing "
                             "payload against the wire-shrink gate (and, "
                             "with --baseline, the throughput-regression "
                             "gate) and exit")
    parser.add_argument("--baseline", metavar="BASELINE_JSON", default=None,
                        help="committed BENCH_baseline.json to gate --check "
                             "throughput against (fails on a drop larger "
                             "than the baseline's max_drop, default 40%%)")
    parser.add_argument("--engine", metavar="BENCH_ENGINE_JSON", default=None,
                        help="also gate this BENCH_engine.json payload "
                             "against the baseline's engine numbers "
                             "(requires --check and --baseline)")
    parser.add_argument("--transport-matrix", metavar="BENCH_TRANSPORT_JSON",
                        default=None,
                        help="also gate this BENCH_transport.json payload "
                             "against the baseline's transport floors and "
                             "the shm-vs-tcp speedup (requires --check and "
                             "--baseline)")
    args = parser.parse_args(argv)

    if args.check is not None:
        payload = json.loads(Path(args.check).read_text())
        failures = check_wire_shrink(payload)
        if args.baseline is not None:
            baseline = json.loads(Path(args.baseline).read_text())
            failures += check_throughput_regression(payload, baseline)
            if args.engine is not None:
                engine_payload = json.loads(Path(args.engine).read_text())
                failures += check_engine_regression(engine_payload, baseline)
            if args.transport_matrix is not None:
                transport_payload = json.loads(
                    Path(args.transport_matrix).read_text())
                failures += check_transport_regression(transport_payload,
                                                       baseline)
        elif args.engine is not None or args.transport_matrix is not None:
            print("bench_server_ingest --check: --engine and "
                  "--transport-matrix require --baseline", file=sys.stderr)
            return 2
        for failure in failures:
            print(f"bench_server_ingest --check: {failure}", file=sys.stderr)
        print(f"bench_server_ingest --check: {args.check} "
              f"{'FAILED' if failures else 'ok'}")
        return 1 if failures else 0

    from repro.experiments import format_table

    payload = run_server_ingest_bench(
        protocols=[p.strip() for p in args.protocols.split(",") if p.strip()],
        num_users=args.num_users, repeats=args.repeats)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(format_table(_report_rows(payload),
                       title=f"server ingest, n={args.num_users}, "
                             f"cpu_count={payload['host']['cpu_count']}"))
    print(f"\nwrote {args.output}")
    if not all(row["identical_to_offline_engine"]
               for row in payload["results"]):
        print("bench_server_ingest: served estimates diverged from the "
              "offline engine", file=sys.stderr)
        return 1
    failures = check_wire_shrink(payload)
    for failure in failures:
        print(f"bench_server_ingest: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
