"""Benchmark W2: multiprocess engine scaling across worker counts.

Sweeps :func:`repro.engine.run_engine_bench` over 1/2/4 workers for every
bench protocol and prints the reports/s and speedup-vs-1-worker table — the
same payload ``python -m repro.cli bench`` writes to ``BENCH_engine.json``.

The asserted invariant is correctness, not speed: parallel runs must produce
estimates bit-identical to the 1-worker run (speedup is host-dependent — a
single-core CI box will even show slowdown from pool overhead, which is fine
and visible in the recorded ``cpu_count``).
"""

from conftest import report, run_once

from repro.engine.bench import BENCH_PROTOCOLS, run_engine_bench

NUM_USERS = 60_000
SEED = 0


def _measure():
    payload = run_engine_bench(protocols=BENCH_PROTOCOLS,
                               worker_counts=(1, 2, 4),
                               num_users=NUM_USERS, domain_size=1 << 16,
                               epsilon=1.0, seed=SEED)
    return payload["results"]


def test_engine_scaling(benchmark):
    rows = run_once(benchmark, _measure)
    report(benchmark, "W2: engine ingest throughput vs worker count", rows)
    for row in rows:
        assert row["identical_to_1_worker"], row
        assert row["reports_per_s"] > 0
