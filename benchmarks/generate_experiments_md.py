"""Regenerate EXPERIMENTS.md — a shim over the matrix runner.

Historically this script owned the EXPERIMENTS.md sections and their
configurations; both now live in the matrix harness
(``experiments/configs/paper.yaml`` + :mod:`repro.experiments.matrix.paper`),
and this file survives only so existing muscle memory and docs links keep
working.  It is exactly equivalent to::

    python -m repro.cli matrix render experiments/configs/paper.yaml [--quick]

Two configurations, as before:

* default (full): the benchmark-harness configurations — the same drivers
  run under ``pytest benchmarks/ --benchmark-only``;
* ``--quick``: the exact quick configurations of
  ``python -m repro.cli run <experiment> --quick``, with host-dependent
  timing columns omitted so the output is deterministic.  This is what the
  committed EXPERIMENTS.md records and what CI regenerates to fail on drift.

Usage::

    python benchmarks/generate_experiments_md.py [--quick] [output_path]
"""

from __future__ import annotations

import argparse
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_CONFIG = _REPO_ROOT / "experiments" / "configs" / "paper.yaml"


def generate(output_path: Path, quick: bool = False) -> None:
    from repro.experiments.matrix.config import load_config
    from repro.experiments.matrix.paper import render_paper_md

    config = load_config(_CONFIG)
    output_path.write_text(render_paper_md(config, quick=quick,
                                           progress=print))
    print(f"wrote {output_path}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate EXPERIMENTS.md (shim over "
                    "`repro.cli matrix render experiments/configs/paper.yaml`)")
    parser.add_argument("output", nargs="?",
                        default=str(_REPO_ROOT / "EXPERIMENTS.md"))
    parser.add_argument("--quick", action="store_true",
                        help="use the deterministic `repro.cli run --quick` "
                             "configurations (what CI checks for drift)")
    args = parser.parse_args(argv)
    generate(Path(args.output), quick=args.quick)


if __name__ == "__main__":
    main()
