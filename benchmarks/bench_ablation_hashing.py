"""Benchmark A1 (ablation): per-coordinate hashes + code vs single hash + repetitions.

Isolates the structural design choice behind the paper's improvement: the
independent per-coordinate hashes feeding a list-recoverable code (this work)
versus one shared hash whose failures are patched by Θ(log(1/β)) repetitions
(Bassily et al. [3]).  Recall and estimation error are compared at several β.
"""

from conftest import report, run_once

from repro.experiments import HashingAblationConfig, run_hashing_ablation


CONFIG = HashingAblationConfig(num_users=40_000, domain_size=1 << 20, epsilon=4.0,
                               betas=[0.2, 0.02, 0.002],
                               heavy_fractions=[0.3, 0.2], rng=0)


def test_ablation_hashing(benchmark):
    rows = run_once(benchmark, run_hashing_ablation, CONFIG)
    report(benchmark, "A1: hashing-structure ablation (code vs repetitions)", rows)
    assert all(row["ours_recall"] == 1.0 for row in rows)
    assert rows[-1]["baseline_repetitions"] > rows[0]["baseline_repetitions"]
