"""Benchmark W1: wire-API ingestion throughput versus the legacy one-shot path.

Measures, per protocol, how many already-encoded reports per second a single
``ServerAggregator.absorb_batch`` ingests, next to the wall-clock of the
legacy ``collect()`` simulation (which additionally pays for client-side
encoding and finalization).  Server-side ingestion is the quantity a sharded
deployment scales by adding workers, so future PRs can track it here.

The invariant asserted below is the acceptance bar of the wire redesign:
ingestion alone is never slower than the full legacy simulation.
"""

import time

import numpy as np

from conftest import report, run_once

from repro.frequency.count_mean_sketch import CountMeanSketchOracle
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.frequency.hashtogram import HashtogramOracle
from repro.protocol import (
    CountMeanSketchParams,
    ExplicitHistogramParams,
    HashtogramParams,
)

NUM_USERS = 100_000
SEED = 0


def _cases():
    return [
        ("explicit/hadamard", 1 << 10,
         lambda: ExplicitHistogramOracle(1 << 10, 1.0),
         lambda: ExplicitHistogramParams(1 << 10, 1.0)),
        ("hashtogram", 1 << 20,
         lambda: HashtogramOracle(1 << 20, 1.0, num_buckets=256),
         lambda: HashtogramParams.create(1 << 20, 1.0, num_buckets=256,
                                         rng=SEED)),
        ("count_mean_sketch", 1 << 20,
         lambda: CountMeanSketchOracle(1 << 20, 1.0, num_hashes=16,
                                       num_buckets=256),
         lambda: CountMeanSketchParams.create(1 << 20, 1.0, num_hashes=16,
                                              num_buckets=256, rng=SEED)),
    ]


def _measure():
    rows = []
    rng = np.random.default_rng(SEED)
    for name, domain, oracle_factory, params_factory in _cases():
        values = rng.integers(0, domain, size=NUM_USERS)

        oracle = oracle_factory()
        start = time.perf_counter()
        oracle.collect(values, np.random.default_rng(1))
        collect_s = time.perf_counter() - start

        params = params_factory()
        encode_start = time.perf_counter()
        batch = params.make_encoder().encode_batch(values,
                                                   np.random.default_rng(1))
        encode_s = time.perf_counter() - encode_start

        aggregator = params.make_aggregator()
        start = time.perf_counter()
        aggregator.absorb_batch(batch)
        absorb_s = time.perf_counter() - start

        rows.append({
            "protocol": name,
            "num_users": NUM_USERS,
            "collect_s": round(collect_s, 4),
            "encode_s": round(encode_s, 4),
            "absorb_s": round(absorb_s, 4),
            "absorb_reports_per_s": int(NUM_USERS / max(absorb_s, 1e-9)),
            "report_bits": round(params.report_bits, 1),
        })
    return rows


def test_wire_throughput(benchmark):
    rows = run_once(benchmark, _measure)
    report(benchmark, "W1: absorb_batch ingestion vs legacy collect", rows)
    for row in rows:
        # Ingestion of pre-encoded reports must not be slower than the legacy
        # one-shot simulation (which encodes, ingests, and finalizes).
        assert row["absorb_s"] <= row["collect_s"], row
        assert row["absorb_reports_per_s"] > 0
