"""Benchmark E3: heavy-hitters estimation error versus the privacy parameter ε.

Theorem 3.13 predicts error proportional to 1/ε: halving the privacy budget
should roughly double the estimation error of the recovered heavy hitters.
"""

from conftest import report, run_once

from repro.experiments import ErrorCurveConfig, run_error_vs_epsilon


CONFIG = ErrorCurveConfig(num_users=40_000, domain_size=1 << 20, beta=0.05,
                          epsilon_sweep=[2.0, 4.0, 8.0], rng=2)


def test_error_vs_epsilon(benchmark):
    rows = run_once(benchmark, run_error_vs_epsilon, CONFIG)
    report(benchmark, "E3: estimation error vs privacy parameter epsilon", rows)
    for row in rows:
        assert row["recovered"] >= 1
        assert row["max_error"] < 6 * row["formula"]
    # 1/epsilon scaling of the envelope.
    assert rows[0]["formula"] > rows[-1]["formula"]
