"""Benchmark E8: the GenProt approximate-to-pure transformation (Theorem 6.1).

For a pure randomized-response base and a genuinely approximate Gaussian base:
transformed privacy (10ε) vs the measured index privacy loss, report size in
bits (the O(log log n) claim), the Theorem 6.1 TV bound, and end-to-end utility
before/after the transformation.
"""

from conftest import report, run_once

from repro.experiments import GenProtConfig, run_genprot


CONFIG = GenProtConfig(epsilon=0.25, delta=1e-9, beta=0.05, num_users=3_000,
                       privacy_trials=3_000, rng=0)


def test_genprot(benchmark):
    rows = run_once(benchmark, run_genprot, CONFIG)
    report(benchmark, "E8: GenProt approximate-to-pure transformation", rows)
    for row in rows:
        assert row["empirical_index_loss"] < row["transformed_epsilon"]
        assert row["report_bits"] <= 8
        assert row["tv_bound"] < 0.2
