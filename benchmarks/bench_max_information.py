"""Benchmark E6: max-information of LDP protocols (Theorem 4.5).

Analytic comparison of the Theorem 4.5 bound against the central-model bounds
over a sweep of n, plus an empirical estimate for a deliberately correlated
(non-product) input distribution — the regime where the local model's
guarantee has no central-model counterpart.
"""

from conftest import report, run_once

from repro.experiments import MaxInformationConfig, run_max_information


CONFIG = MaxInformationConfig(epsilon=0.1, beta=0.05,
                              num_users_sweep=[100, 1_000, 10_000],
                              empirical_users=200, empirical_samples=4_000, rng=0)


def test_max_information(benchmark):
    rows = run_once(benchmark, run_max_information, CONFIG)
    report(benchmark, "E6: max-information bounds (LDP vs central)", rows)
    analytic = rows[:-1]
    empirical = rows[-1]
    for row in analytic:
        assert row["ldp_bound_nats"] < row["central_bound_nats"]
    assert empirical["empirical_max_information_nats"] <= (
        empirical["ldp_bound_nats"] + 1e-9)
