"""Shared helpers for the benchmark harness.

Every benchmark runs its experiment driver exactly once (rounds=1) under
pytest-benchmark — the quantity of interest is the experiment's *output table*
(printed to stdout and attached to ``benchmark.extra_info``), with the timing
as a secondary, host-dependent figure.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated tables inline; they are also echoed into
``EXPERIMENTS.md`` by ``benchmarks/generate_experiments_md.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import format_table


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(benchmark, title: str, rows: List[Dict[str, object]]) -> None:
    """Print a formatted table and attach the rows to the benchmark record."""
    print()
    print(format_table(rows, title=title))
    benchmark.extra_info["title"] = title
    benchmark.extra_info["rows"] = rows
