"""Benchmark E7: composition for randomized response (Theorem 5.1).

Exact worst-case privacy loss and TV distance of the surrogate mechanism M̃
across a sweep of k, against the Theorem 5.1 guarantee 6ε sqrt(k ln(1/β)) and
basic composition kε.  The measured loss must stay below the theorem bound and
fall below the linear kε curve once k is large.
"""

from conftest import report, run_once

from repro.experiments import ComposedRRConfig, run_composed_rr


CONFIG = ComposedRRConfig(epsilon=0.05, beta=0.05,
                          num_bits_sweep=[4, 8, 16, 32, 64, 128, 256])


def test_composed_rr(benchmark):
    rows = run_once(benchmark, run_composed_rr, CONFIG)
    report(benchmark, "E7: composed randomized response (Theorem 5.1)", rows)
    for row in rows:
        assert row["worst_case_loss"] <= row["theorem_bound"] + 1e-9
        assert row["tv_distance"] <= row["beta"] + 1e-12
    assert rows[-1]["worst_case_loss"] < rows[-1]["basic_composition"]
