"""Benchmark E10: the unique-list-recoverable code under corruption (Theorem 3.6).

Recovery rate of planted codewords as a function of the fraction of corrupted
coordinates: flat at 1.0 below the code's tolerance, collapsing above it, with
few spurious decodes throughout.
"""

from conftest import report, run_once

from repro.experiments import ListRecoveryConfig, run_list_recovery


CONFIG = ListRecoveryConfig(domain_size=1 << 16, num_coordinates=12,
                            hash_range=128, list_size=16, alpha=0.25,
                            num_codewords=6, noise_entries_per_list=4,
                            corrupted_fractions=[0.0, 0.1, 0.2, 0.3, 0.5],
                            num_trials=5, rng=0)


def test_list_recovery(benchmark):
    rows = run_once(benchmark, run_list_recovery, CONFIG)
    report(benchmark, "E10: list-recovery rate vs corrupted-coordinate fraction",
           rows)
    # Below the code's tolerance recovery is (near-)perfect; occasional hash
    # collisions between planted codewords cost isolated coordinates.
    assert rows[0]["recovery_rate"] >= 0.95
    assert rows[1]["recovery_rate"] >= 0.85
    assert rows[-1]["recovery_rate"] <= 0.5      # far above alpha: collapses
