"""Benchmark E2: heavy-hitters estimation error versus the number of users n.

Theorem 3.13 predicts error growing like sqrt(n); the measured worst error
over recovered planted elements should stay within a constant multiple of the
``(1/ε) sqrt(n log(|X|/β))`` envelope across the sweep.
"""

from conftest import report, run_once

from repro.experiments import ErrorCurveConfig, run_error_vs_n


CONFIG = ErrorCurveConfig(domain_size=1 << 20, epsilon=4.0, beta=0.05,
                          num_users_sweep=[10_000, 20_000, 40_000, 80_000], rng=1)


def test_error_vs_n(benchmark):
    rows = run_once(benchmark, run_error_vs_n, CONFIG)
    report(benchmark, "E2: estimation error vs number of users n", rows)
    for row in rows:
        assert row["recovered"] >= 1
        assert row["max_error"] < 6 * row["formula"]
    # The theoretical envelope grows with n; the measured error should not
    # shrink dramatically while the formula doubles (shape check).
    assert rows[-1]["formula"] > rows[0]["formula"]
