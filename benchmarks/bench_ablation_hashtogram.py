"""Benchmark A2 (ablation): Hashtogram bucket-count / repetition trade-off.

More buckets reduce hash-collision noise at the cost of server memory; more
repetitions reduce per-query variance at the cost of public randomness.  The
table quantifies both axes for the final-stage oracle configuration.
"""

from conftest import report, run_once

from repro.experiments import HashtogramAblationConfig, run_hashtogram_ablation


CONFIG = HashtogramAblationConfig(num_users=30_000, domain_size=1 << 18,
                                  epsilon=1.0, bucket_counts=[32, 128, 512],
                                  repetition_counts=[1, 3, 7],
                                  num_queries=100, rng=0)


def test_ablation_hashtogram(benchmark):
    rows = run_once(benchmark, run_hashtogram_ablation, CONFIG)
    report(benchmark, "A2: Hashtogram bucket/repetition ablation", rows)
    by_key = {(r["num_buckets"], r["num_repetitions"]): r for r in rows}
    assert by_key[(512, 7)]["server_memory_items"] > by_key[(32, 1)]["server_memory_items"]
    assert by_key[(512, 7)]["public_randomness_bits"] > by_key[(32, 1)]["public_randomness_bits"]
    # The best configuration should comfortably beat the worst on RMS error.
    best = min(row["rms_error"] for row in rows)
    worst = max(row["rms_error"] for row in rows)
    assert best < worst
