"""Benchmark E5: advanced grouposition (Theorem 4.2).

Measured (1-δ)-quantiles of the cumulative privacy loss of k randomized-
response reports, against the central-model kε line and the local-model
kε²/2 + ε sqrt(2k ln(1/δ)) curve.  The measured curve must stay below the
Theorem 4.2 bound and separate from the linear central curve as k grows.
"""

from conftest import report, run_once

from repro.experiments import GroupositionConfig, run_grouposition


CONFIG = GroupositionConfig(epsilon=0.2, delta=0.05,
                            group_sizes=[1, 4, 16, 64, 256, 1024],
                            num_samples=30_000, rng=0)


def test_grouposition(benchmark):
    rows = run_once(benchmark, run_grouposition, CONFIG)
    report(benchmark, "E5: group privacy loss vs k (local sqrt(k) vs central k)",
           rows)
    for row in rows:
        assert row["measured_quantile"] <= row["advanced_grouposition_bound"] + 1e-9
    assert rows[-1]["advantage"] > rows[0]["advantage"]
    assert rows[-1]["central_bound_k_epsilon"] > 4 * rows[-1]["measured_quantile"]
