"""Benchmark E9: the error lower bound (Theorem 7.2) and its anti-concentration core.

Part 1 runs the replicated-database construction against the optimal ε-LDP
counting protocol and compares the measured (1-β)-quantile error with the
``Ω((1/ε) sqrt(n log(1/β)))`` lower-bound curve and the matching upper bound —
the measured curve must be sandwiched between them (up to constants).

Part 2 evaluates the exact escape probability of a Poisson-binomial sum from
intervals of the Corollary 7.6 width, verifying the anti-concentration step.
"""

from conftest import report, run_once

from repro.experiments import (
    LowerBoundConfig,
    run_anti_concentration,
    run_counting_lower_bound,
)


CONFIG = LowerBoundConfig(num_users=8_000, epsilon=1.0,
                          betas=[0.3, 0.1, 0.03, 0.01], num_trials=300,
                          anticoncentration_bits=400, rng=0)


def test_counting_lower_bound(benchmark):
    rows = run_once(benchmark, run_counting_lower_bound, CONFIG)
    report(benchmark, "E9a: counting error quantiles vs the Theorem 7.2 curve", rows)
    for row in rows:
        assert row["measured_quantile_error"] >= 0.4 * row["lower_bound"]
        assert row["measured_quantile_error"] <= 1.5 * row["upper_bound"]
    # The quantile grows as beta shrinks (the sqrt(log(1/beta)) dependence).
    assert rows[-1]["measured_quantile_error"] > rows[0]["measured_quantile_error"]


def test_anti_concentration(benchmark):
    rows = run_once(benchmark, run_anti_concentration, CONFIG)
    report(benchmark, "E9b: Corollary 7.6 interval escape probabilities", rows)
    for row in rows:
        assert row["escape_at_least_beta"]
