"""Benchmark T1: regenerate Table 1 (protocol comparison).

Reproduces the rows of the paper's Table 1: server time, user time, server
memory, per-user communication, public randomness, and worst-case error for
PrivateExpanderSketch versus the Bassily et al. [3]-style baseline and the
Bassily-Smith-style domain-scan baseline, plus the asymptotic formula rows.
"""

from conftest import report, run_once

from repro.experiments import Table1Config, run_table1, theoretical_rows


CONFIG = Table1Config(num_users=60_000, domain_size=1 << 20, epsilon=4.0,
                      beta=0.05, heavy_fractions=[0.3, 0.22, 0.15],
                      scan_domain_size=1 << 14, rng=0)


def test_table1_measured(benchmark):
    """Measured resource/error profile of the three protocols (Table 1)."""
    rows = run_once(benchmark, run_table1, CONFIG)
    report(benchmark, "Table 1 (measured): protocol resource and error comparison",
           rows)
    ours = rows[0]
    assert ours["protocol"] == "private_expander_sketch"
    assert ours["recall"] == 1.0
    assert ours["comm_bits_per_user"] < 200


def test_table1_formulas(benchmark):
    """Asymptotic Table 1 rows evaluated at the benchmark's parameters."""
    rows = run_once(benchmark, theoretical_rows, CONFIG)
    report(benchmark, "Table 1 (asymptotic formulas at the benchmark parameters)",
           rows)
    assert rows[0]["error_value"] < rows[1]["error_value"] < rows[2]["error_value"]
