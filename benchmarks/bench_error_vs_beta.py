"""Benchmark E1: detection threshold / error versus the failure probability β.

The paper's headline improvement (Theorem 3.13 vs Theorem 3.3): the error of
the new protocol scales with sqrt(log(|X|/β)) while the prior reduction pays an
extra sqrt(log(1/β)) because it amplifies success probability by repetitions.
The benchmark measures the empirical detection threshold of both protocols as
β shrinks: ours should stay flat, the baseline's should degrade.
"""

from conftest import report, run_once

from repro.experiments import ErrorCurveConfig, run_error_vs_beta


CONFIG = ErrorCurveConfig(num_users=40_000, domain_size=1 << 20, epsilon=4.0,
                          betas=[0.2, 0.05, 0.01, 1e-3, 1e-5],
                          probe_fractions=[0.04, 0.07, 0.11, 0.16, 0.22, 0.3],
                          rng=0)


def test_error_vs_beta(benchmark):
    rows = run_once(benchmark, run_error_vs_beta, CONFIG)
    report(benchmark, "E1: detection threshold vs failure probability beta", rows)
    # The baseline's repetition count must grow as beta shrinks; ours has no
    # beta-dependent machinery at all.
    assert rows[-1]["baseline_repetitions"] > rows[0]["baseline_repetitions"]
    # Our detection threshold at the smallest beta is no worse than the
    # baseline's (usually strictly better).
    assert rows[-1]["ours_detection_fraction"] <= (
        rows[-1]["baseline_detection_fraction"] + 1e-9)
    # The formula gap grows like sqrt(log(1/beta)).
    assert (rows[-1]["baseline_formula"] / rows[-1]["ours_formula"]
            > rows[0]["baseline_formula"] / rows[0]["ours_formula"])
