"""Benchmark W4: sustained wire ingest through the sharded cluster tier.

Measures what the router adds on top of a single server: the routing peek
(a few header bytes per frame), the verbatim re-framed forward to the
owning shard, the per-shard journal append, and — on query — the
state-pull/exact-merge round across every shard.  One row per shard count
(1 = a plain ``serve`` process, the single-server reference; K > 1 = a
``serve-cluster`` router with K shard subprocesses) records end-to-end
ingest throughput and whether the served estimates stayed bit-identical to
the offline engine, which is the only regime in which the numbers mean
anything.

On a 1-core CI host every shard shares the core with the router and the
client, so the cluster rows measure *overhead*, not scaling; on a real
multicore host the shards absorb in parallel.  Run as a script to print
the table and write ``BENCH_cluster.json``::

    PYTHONPATH=src python benchmarks/bench_cluster_ingest.py

or under pytest-benchmark (CI smoke)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster_ingest.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

NUM_USERS = 200_000
CHUNK_SIZE = 1 << 14
SHARD_COUNTS = (1, 2, 3)
TRANSPORTS = ("tcp", "shm")
SEED = 0


def run_cluster_ingest_bench(shard_counts: Sequence[int] = SHARD_COUNTS,
                             num_users: int = NUM_USERS,
                             domain_size: int = 1 << 16,
                             epsilon: float = 1.0, seed: int = SEED,
                             chunk_size: int = CHUNK_SIZE,
                             wire_format: str = "binary",
                             verify_queries: int = 64) -> Dict[str, object]:
    """Measure cluster wire ingest per shard count (1 = single server)."""
    from repro.cli import _spawn_server
    from repro.engine import encode_stream, make_plan, run_simulation
    from repro.engine.bench import build_bench_params
    from repro.server import AggregationClient, encode_reports_frame
    from repro.utils.rng import as_generator
    from repro.workloads.distributions import zipf_workload

    setup_gen = as_generator(seed)
    values = zipf_workload(num_users, domain_size,
                           support=min(2_000, domain_size), rng=setup_gen)
    params = build_bench_params("hashtogram", domain_size, epsilon, num_users,
                                rng=setup_gen)
    plan_seed = int(setup_gen.integers(0, 2**63 - 1))

    batches = list(encode_stream(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=chunk_size))
    # canonical routing keys: replay the same plan the stream encoded
    routes = [chunk.route_key for chunk in
              make_plan(params, num_users, rng=np.random.default_rng(plan_seed),
                        chunk_size=chunk_size)]
    frames = b"".join(
        encode_reports_frame(batch, 0, wire_format, route=route)
        for batch, route in zip(batches, routes, strict=True))
    queries = [int(x) for x in np.random.default_rng(0).integers(
        0, domain_size, size=verify_queries)]
    expected = run_simulation(
        params, values, rng=np.random.default_rng(plan_seed),
        chunk_size=chunk_size).finalize().estimate_many(queries)

    results: List[Dict[str, object]] = []
    for shards in shard_counts:
        if shards == 1:
            proc, host, port = _spawn_server(params)
        else:
            proc, host, port = _spawn_server(
                params, ("--shards", str(shards)), verb="serve-cluster")
        try:
            with AggregationClient(host, port) as client:
                start_t = time.perf_counter()
                client.send_raw(frames)
                absorbed = client.sync()
                ingest_s = time.perf_counter() - start_t
                query_start = time.perf_counter()
                served = client.query(queries)
                query_s = time.perf_counter() - query_start
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)
            proc.stdout.close()
        if absorbed != num_users:
            raise RuntimeError(f"{shards} shard(s): absorbed {absorbed} of "
                               f"{num_users} reports")
        results.append({
            "shards": int(shards),
            "num_users": int(num_users),
            "num_frames": len(batches),
            "wire_format": wire_format,
            "ingest_s": round(ingest_s, 4),
            "reports_per_s": int(num_users / max(ingest_s, 1e-9)),
            "merged_query_s": round(query_s, 4),
            "identical_to_offline_engine": bool(
                np.array_equal(served, expected)),
        })
    return {
        "benchmark": "cluster_ingest",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "num_users": int(num_users),
            "domain_size": int(domain_size),
            "epsilon": float(epsilon),
            "seed": int(seed),
            "chunk_size": int(chunk_size),
            "wire_format": wire_format,
            "shard_counts": [int(s) for s in shard_counts],
        },
        "results": results,
    }


def _relay_main(address: str) -> int:
    """Frame-relay child for the transport matrix (internal --relay-serve).

    Serves the real frame protocol on ``address``, counts every frame it
    fully reads, and answers a ``{"type": "sync"}`` frame with the running
    totals.  No aggregation happens here on purpose: absorbing costs ~50 ns
    per report, which would drown the per-transport signal the matrix
    exists to measure.
    """
    import asyncio

    from repro import transport as transports
    from repro.server.framing import frame_bytes, read_frame_payload

    async def run() -> None:
        stop = asyncio.Event()

        async def handler(reader, writer) -> None:
            frames = 0
            received = 0
            while True:
                payload = await read_frame_payload(reader)
                if payload is None:
                    break
                if payload[:1] == b"{" and b'"sync"' in payload:
                    reply = json.dumps({"type": "synced", "frames": frames,
                                        "bytes": received}).encode()
                    writer.write(frame_bytes(reply))
                    await writer.drain()
                    continue
                frames += 1
                received += len(payload)
            stop.set()

        listener = await transports.serve(handler, address)
        print(f"RELAY {listener.address}", flush=True)
        await stop.wait()
        listener.close()
        await listener.wait_closed()

    asyncio.run(run())
    return 0


def _measure_wire(transport: str, blob: bytes, frames_per_pass: int,
                  repeats: int) -> List[float]:
    """Time ``repeats`` passes of ``blob`` through a frame-relay child."""
    import asyncio
    import subprocess

    from repro import transport as transports

    if transport == "shm":
        spec = f"shm://repro-wirebench-{os.getpid()}"
        # a ring the size of the payload never stalls mid-pass, so the
        # number measures the carrier, not this host's scheduler
        ring_bytes = 1 << max(16, (len(blob) + 65536).bit_length())
        options: Dict[str, object] = {"ring_bytes": ring_bytes}
    elif transport == "tcp":
        spec = "tcp://127.0.0.1:0"
        options = {}
    else:
        raise ValueError(f"unknown transport {transport!r} "
                         f"(expected one of {TRANSPORTS})")
    proc = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--relay-serve", spec],
        stdout=subprocess.PIPE, text=True)
    try:
        line = proc.stdout.readline()
        if not line.startswith("RELAY "):
            raise RuntimeError(f"relay child failed to start: {line!r}")
        address = line.split()[1]

        async def drive() -> List[float]:
            conn = await transports.dial(address, timeout=60.0, **options)
            times: List[float] = []
            try:
                for _ in range(repeats):
                    start_t = time.perf_counter()
                    conn.writer.write(blob)
                    await conn.writer.drain()
                    await conn.send(b'{"type": "sync"}')
                    reply = json.loads(await conn.recv(timeout=600.0))
                    times.append(time.perf_counter() - start_t)
                    if int(reply["frames"]) != len(times) * frames_per_pass:
                        raise RuntimeError(
                            f"{transport}: relay saw {reply['frames']} frames "
                            f"after {len(times)} passes of {frames_per_pass}")
            finally:
                conn.close()
                await conn.wait_closed()
            return times

        times = asyncio.run(drive())
        # the dial close above is the relay's EOF; let it unlink its
        # segments and exit on its own before reaching for SIGTERM
        proc.wait(timeout=10)
        return times
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)
        proc.stdout.close()


def run_transport_matrix_bench(transports: Sequence[str] = TRANSPORTS,
                               num_users: int = NUM_USERS,
                               domain_size: int = 1 << 16,
                               epsilon: float = 1.0, seed: int = SEED,
                               chunk_size: int = CHUNK_SIZE,
                               wire_format: str = "binary",
                               target_wire_mb: float = 64.0,
                               repeats: int = 5,
                               verify_queries: int = 64) -> Dict[str, object]:
    """Measure the transport data plane per backend, verified per backend.

    One row per registered backend (``tcp`` = asyncio loopback streams,
    ``shm`` = the same-host shared-memory ring pair of wire-protocol.md §9).
    Each row is two passes:

    * **verify** (untimed): the encoded report frames stream through a real
      ``serve`` process over that backend; the served estimates must be
      bit-identical to the offline engine.  Same frames, same aggregate, on
      every carrier.
    * **measure** (timed, best of ``repeats``): the same frame bytes —
      replicated up to ``target_wire_mb`` so the payload dwarfs the kernel's
      socket buffers — stream through a frame-relay child that reads every
      frame but absorbs nothing.  This times the carrier plus the framing
      layer, not the aggregation engine; it is the regime where the ring's
      no-syscall, no-context-switch design shows up (a payload that fits
      the socket buffers hides it).
    """
    import asyncio

    from repro.cli import _spawn_server
    from repro.engine import encode_stream, run_simulation
    from repro.engine.bench import build_bench_params
    from repro.server import AsyncAggregationClient, encode_reports_frame
    from repro.utils.rng import as_generator
    from repro.workloads.distributions import zipf_workload

    setup_gen = as_generator(seed)
    values = zipf_workload(num_users, domain_size,
                           support=min(2_000, domain_size), rng=setup_gen)
    params = build_bench_params("hashtogram", domain_size, epsilon, num_users,
                                rng=setup_gen)
    plan_seed = int(setup_gen.integers(0, 2**63 - 1))
    batches = list(encode_stream(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=chunk_size))
    frames = b"".join(encode_reports_frame(batch, 0, wire_format)
                      for batch in batches)
    queries = [int(x) for x in np.random.default_rng(0).integers(
        0, domain_size, size=verify_queries)]
    expected = run_simulation(
        params, values, rng=np.random.default_rng(plan_seed),
        chunk_size=chunk_size).finalize().estimate_many(queries)
    copies = max(1, -(-int(target_wire_mb * 1e6) // len(frames)))
    blob = frames * copies

    async def verify(address: str):
        client = await AsyncAggregationClient.dial(address, timeout=300.0)
        try:
            await client.send_raw(frames)
            absorbed = await client.sync()
            served = await client.query(queries)
            await client.shutdown()
        finally:
            await client.close()
        return absorbed, served

    results: List[Dict[str, object]] = []
    for transport in transports:
        if transport == "shm":
            name = f"repro-bench-{os.getpid()}-{len(results)}"
            proc, _host, _port = _spawn_server(
                params, ("--transport", "shm", "--shm-name", name))
            address = f"shm://{name}"
        elif transport == "tcp":
            proc, host, port = _spawn_server(params)
            address = f"tcp://{host}:{port}"
        else:
            raise ValueError(f"unknown transport {transport!r} "
                             f"(expected one of {TRANSPORTS})")
        try:
            absorbed, served = asyncio.run(verify(address))
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)
            proc.stdout.close()
        if absorbed != num_users:
            raise RuntimeError(f"{transport}: absorbed {absorbed} of "
                               f"{num_users} reports")
        wire_s = min(_measure_wire(transport, blob,
                                   len(batches) * copies, repeats))
        wire_reports = num_users * copies
        results.append({
            "transport": transport,
            "num_users": int(num_users),
            "num_frames": len(batches) * copies,
            "wire_format": wire_format,
            "wire_mb": round(len(blob) / 1e6, 2),
            "repeats": int(repeats),
            "wire_s": round(wire_s, 4),
            "reports_per_s": int(wire_reports / max(wire_s, 1e-9)),
            "mb_per_s": round(len(blob) / 1e6 / max(wire_s, 1e-9), 1),
            "identical_to_offline_engine": bool(
                np.array_equal(served, expected)),
        })
    return {
        "benchmark": "transport_matrix",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "num_users": int(num_users),
            "domain_size": int(domain_size),
            "epsilon": float(epsilon),
            "seed": int(seed),
            "chunk_size": int(chunk_size),
            "wire_format": wire_format,
            "target_wire_mb": float(target_wire_mb),
            "repeats": int(repeats),
            "transports": [str(t) for t in transports],
        },
        "results": results,
    }


def test_cluster_ingest(benchmark):
    """CI smoke: every shard count must stay bit-identical to the engine."""
    from conftest import report, run_once

    payload = run_once(benchmark, run_cluster_ingest_bench,
                       shard_counts=(1, 2), num_users=40_000)
    rows = list(payload["results"])
    report(benchmark, "W4: cluster wire-ingest throughput", rows)
    for row in rows:
        assert row["identical_to_offline_engine"], row
        assert row["reports_per_s"] > 0


def test_transport_matrix(benchmark):
    """CI smoke: every transport backend must stay bit-identical to the
    engine.  The speedup *floor* is gated separately against the committed
    baseline (``bench_server_ingest.py --check --transport-matrix``)."""
    from conftest import report, run_once

    payload = run_once(benchmark, run_transport_matrix_bench,
                       num_users=40_000, target_wire_mb=4.0, repeats=2)
    rows = list(payload["results"])
    report(benchmark, "W5: transport-matrix wire-ingest throughput", rows)
    assert [row["transport"] for row in rows] == list(TRANSPORTS)
    for row in rows:
        assert row["identical_to_offline_engine"], row
        assert row["reports_per_s"] > 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=NUM_USERS)
    parser.add_argument("--shards", default="1,2,3",
                        help="comma-separated shard counts (1 = one server)")
    parser.add_argument("--wire-format", default="binary",
                        choices=["json", "binary"])
    parser.add_argument("--transport-matrix", action="store_true",
                        help="benchmark the transport data plane per backend "
                             "(tcp, shm) instead of shard counts; writes "
                             "BENCH_transport.json unless --output is given")
    parser.add_argument("--relay-serve", metavar="ADDRESS", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--output", default=None,
                        help="output JSON path (default BENCH_cluster.json, "
                             "or BENCH_transport.json with "
                             "--transport-matrix)")
    args = parser.parse_args(argv)

    if args.relay_serve is not None:
        return _relay_main(args.relay_serve)

    from repro.experiments import format_table

    if args.transport_matrix:
        output = args.output or "BENCH_transport.json"
        payload = run_transport_matrix_bench(num_users=args.num_users,
                                             wire_format=args.wire_format)
        Path(output).write_text(json.dumps(payload, indent=2) + "\n")
        print(format_table(list(payload["results"]),
                           title=f"transport matrix, n={args.num_users}, "
                                 f"cpu_count={payload['host']['cpu_count']}"))
        print(f"\nwrote {output}")
        if not all(row["identical_to_offline_engine"]
                   for row in payload["results"]):
            print("bench_cluster_ingest: served estimates diverged from the "
                  "offline engine", file=sys.stderr)
            return 1
        return 0

    try:
        shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
    except ValueError:
        print("bench_cluster_ingest: --shards must be a comma-separated "
              "list of integers", file=sys.stderr)
        return 2
    output = args.output or "BENCH_cluster.json"
    payload = run_cluster_ingest_bench(shard_counts=shard_counts,
                                       num_users=args.num_users,
                                       wire_format=args.wire_format)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(format_table(list(payload["results"]),
                       title=f"cluster ingest, n={args.num_users}, "
                             f"cpu_count={payload['host']['cpu_count']}"))
    print(f"\nwrote {output}")
    if not all(row["identical_to_offline_engine"]
               for row in payload["results"]):
        print("bench_cluster_ingest: served estimates diverged from the "
              "offline engine", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
