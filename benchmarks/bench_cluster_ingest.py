"""Benchmark W4: sustained wire ingest through the sharded cluster tier.

Measures what the router adds on top of a single server: the routing peek
(a few header bytes per frame), the verbatim re-framed forward to the
owning shard, the per-shard journal append, and — on query — the
state-pull/exact-merge round across every shard.  One row per shard count
(1 = a plain ``serve`` process, the single-server reference; K > 1 = a
``serve-cluster`` router with K shard subprocesses) records end-to-end
ingest throughput and whether the served estimates stayed bit-identical to
the offline engine, which is the only regime in which the numbers mean
anything.

On a 1-core CI host every shard shares the core with the router and the
client, so the cluster rows measure *overhead*, not scaling; on a real
multicore host the shards absorb in parallel.  Run as a script to print
the table and write ``BENCH_cluster.json``::

    PYTHONPATH=src python benchmarks/bench_cluster_ingest.py

or under pytest-benchmark (CI smoke)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster_ingest.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

NUM_USERS = 200_000
CHUNK_SIZE = 1 << 14
SHARD_COUNTS = (1, 2, 3)
SEED = 0


def run_cluster_ingest_bench(shard_counts: Sequence[int] = SHARD_COUNTS,
                             num_users: int = NUM_USERS,
                             domain_size: int = 1 << 16,
                             epsilon: float = 1.0, seed: int = SEED,
                             chunk_size: int = CHUNK_SIZE,
                             wire_format: str = "binary",
                             verify_queries: int = 64) -> Dict[str, object]:
    """Measure cluster wire ingest per shard count (1 = single server)."""
    from repro.cli import _spawn_server
    from repro.engine import encode_stream, make_plan, run_simulation
    from repro.engine.bench import build_bench_params
    from repro.server import AggregationClient, encode_reports_frame
    from repro.utils.rng import as_generator
    from repro.workloads.distributions import zipf_workload

    setup_gen = as_generator(seed)
    values = zipf_workload(num_users, domain_size,
                           support=min(2_000, domain_size), rng=setup_gen)
    params = build_bench_params("hashtogram", domain_size, epsilon, num_users,
                                rng=setup_gen)
    plan_seed = int(setup_gen.integers(0, 2**63 - 1))

    batches = list(encode_stream(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=chunk_size))
    # canonical routing keys: replay the same plan the stream encoded
    routes = [chunk.route_key for chunk in
              make_plan(params, num_users, rng=np.random.default_rng(plan_seed),
                        chunk_size=chunk_size)]
    frames = b"".join(
        encode_reports_frame(batch, 0, wire_format, route=route)
        for batch, route in zip(batches, routes, strict=True))
    queries = [int(x) for x in np.random.default_rng(0).integers(
        0, domain_size, size=verify_queries)]
    expected = run_simulation(
        params, values, rng=np.random.default_rng(plan_seed),
        chunk_size=chunk_size).finalize().estimate_many(queries)

    results: List[Dict[str, object]] = []
    for shards in shard_counts:
        if shards == 1:
            proc, host, port = _spawn_server(params)
        else:
            proc, host, port = _spawn_server(
                params, ("--shards", str(shards)), verb="serve-cluster")
        try:
            with AggregationClient(host, port) as client:
                start_t = time.perf_counter()
                client.send_raw(frames)
                absorbed = client.sync()
                ingest_s = time.perf_counter() - start_t
                query_start = time.perf_counter()
                served = client.query(queries)
                query_s = time.perf_counter() - query_start
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)
            proc.stdout.close()
        if absorbed != num_users:
            raise RuntimeError(f"{shards} shard(s): absorbed {absorbed} of "
                               f"{num_users} reports")
        results.append({
            "shards": int(shards),
            "num_users": int(num_users),
            "num_frames": len(batches),
            "wire_format": wire_format,
            "ingest_s": round(ingest_s, 4),
            "reports_per_s": int(num_users / max(ingest_s, 1e-9)),
            "merged_query_s": round(query_s, 4),
            "identical_to_offline_engine": bool(
                np.array_equal(served, expected)),
        })
    return {
        "benchmark": "cluster_ingest",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "num_users": int(num_users),
            "domain_size": int(domain_size),
            "epsilon": float(epsilon),
            "seed": int(seed),
            "chunk_size": int(chunk_size),
            "wire_format": wire_format,
            "shard_counts": [int(s) for s in shard_counts],
        },
        "results": results,
    }


def test_cluster_ingest(benchmark):
    """CI smoke: every shard count must stay bit-identical to the engine."""
    from conftest import report, run_once

    payload = run_once(benchmark, run_cluster_ingest_bench,
                       shard_counts=(1, 2), num_users=40_000)
    rows = list(payload["results"])
    report(benchmark, "W4: cluster wire-ingest throughput", rows)
    for row in rows:
        assert row["identical_to_offline_engine"], row
        assert row["reports_per_s"] > 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=NUM_USERS)
    parser.add_argument("--shards", default="1,2,3",
                        help="comma-separated shard counts (1 = one server)")
    parser.add_argument("--wire-format", default="binary",
                        choices=["json", "binary"])
    parser.add_argument("--output", default="BENCH_cluster.json")
    args = parser.parse_args(argv)

    from repro.experiments import format_table

    try:
        shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
    except ValueError:
        print("bench_cluster_ingest: --shards must be a comma-separated "
              "list of integers", file=sys.stderr)
        return 2
    payload = run_cluster_ingest_bench(shard_counts=shard_counts,
                                       num_users=args.num_users,
                                       wire_format=args.wire_format)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(format_table(list(payload["results"]),
                       title=f"cluster ingest, n={args.num_users}, "
                             f"cpu_count={payload['host']['cpu_count']}"))
    print(f"\nwrote {args.output}")
    if not all(row["identical_to_offline_engine"]
               for row in payload["results"]):
        print("bench_cluster_ingest: served estimates diverged from the "
              "offline engine", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
