"""Setuptools entry point (kept so that `pip install -e .` works without the
`wheel` package being available; all metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
