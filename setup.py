"""Setuptools entry point; all metadata lives in pyproject.toml.

Kept for tooling that still invokes ``setup.py`` directly.  On hosts without
a modern setuptools/wheel toolchain, skip installation entirely and run with
``PYTHONPATH=src`` as README.md describes.
"""

from setuptools import setup

setup()
